//! The global version clock (TL2).
//!
//! Every committed writer transaction advances the clock by 2, so committed
//! versions are always *even*; an odd value in a variable's version word
//! means "write-locked by a committing transaction". The clock is a single
//! process-wide atomic: transactional variables are plain memory shared by
//! all runtimes, so their version numbers must come from one totally ordered
//! source.

use ad_support::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);

/// Current clock value (always even). Used as a transaction's read version
/// (`rv`): the transaction may only observe versions `<= rv` without
/// revalidating its snapshot.
///
/// `Acquire` (not `SeqCst`) suffices, per TL2's own argument: correctness
/// only needs `rv` to be a *lower bound* on the clock at the moment the
/// transaction starts. `Acquire` synchronizes with the `SeqCst` RMW in
/// `tick`, so a transaction that reads `rv = t` sees every write-back of
/// the commit that produced `t`. A stale (smaller) value is always safe:
/// the transaction merely extends its snapshot (or aborts) more often.
#[inline]
pub fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Advance the clock and return the new (even) write version for a
/// committing transaction.
#[inline]
pub fn tick() -> u64 {
    GLOBAL_CLOCK.fetch_add(2, Ordering::SeqCst) + 2
}

/// True if a version word is write-locked (odd).
#[inline]
pub fn is_locked(version: u64) -> bool {
    version & 1 == 1
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_even() {
        let a = now();
        assert_eq!(a % 2, 0);
        let b = tick();
        assert_eq!(b % 2, 0);
        assert!(b > a);
        assert!(now() >= b);
    }

    #[test]
    fn locked_bit_detection() {
        assert!(!is_locked(0));
        assert!(!is_locked(42));
        assert!(is_locked(1));
        assert!(is_locked(43));
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..1000).map(|_| tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "two ticks returned the same version");
    }
}
