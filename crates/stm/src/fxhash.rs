//! A tiny FxHash implementation for the transaction-internal read/write-set
//! maps, which are keyed by pointer-derived `usize` values.
//!
//! The default SipHash hasher is measurably slow for the
//! one-integer-key-per-access pattern of an STM (see the Rust Performance
//! Book, "Hashing"). Rather than adding an external dependency beyond the
//! allowed set, we inline the ~20-line Fx algorithm used by rustc.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher: multiply-and-rotate word-at-a-time hashing.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` specialized with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` specialized with FxHash.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<usize, u32> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert(i * 8, i as u32);
        }
        for i in 0..1000usize {
            assert_eq!(m.get(&(i * 8)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_usually_hash_distinctly() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let mut h = b.build_hasher();
            h.write_u64(i * 64);
            seen.insert(h.finish());
        }
        // Fx is not cryptographic, but pointer-like keys must not collapse.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_writes_match_varying_lengths() {
        use std::hash::Hasher;
        let mut h1 = FxHasher::default();
        h1.write(b"hello world, this is a test");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, this is a tesu");
        assert_ne!(h1.finish(), h2.finish());
    }
}
