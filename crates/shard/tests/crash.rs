//! Byte-level crash/recovery for cross-shard transactions.
//!
//! Three layers:
//!
//! 1. **Aligned crash matrix** — a scripted history of single- and
//!    cross-shard batches runs through a [`ShardRouter`] over one
//!    [`MemDisk`] per shard. After every operation returns (= acked),
//!    the per-disk journal lengths are recorded as one *aligned cut*.
//!    Every cut is rebuilt pessimistically (each disk truncated to its
//!    synced prefix — unsynced bytes lost) and optimistically, reopened
//!    with [`ShardRouter::open_on_disks`], and must recover to exactly
//!    the model at that cut: an acked batch is durable on *every*
//!    shard, with no partial cross-shard state.
//!
//! 2. **Killed-coordinator / killed-participant windows** — the store
//!    level primitives stage a real prepare on one disk while the
//!    coordinator's decision is either withheld, torn mid-append, or
//!    completed, producing the exact mid-protocol disk images a crash
//!    leaves behind (including byte-level cuts inside the decision and
//!    re-log records). Recovery must apply the batch everywhere when
//!    any surviving log proves it decided, and nowhere otherwise.
//!
//! 3. **Concurrent readers** — while cross-shard batches commit, a
//!    reader hammering both shards must never observe one key of a
//!    batch's per-shard slice without its sibling.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

use ad_kv::{CkptPolicy, KvConfig, KvStore, MemDisk, RemoteSlice, SyncPolicy, WriteBatch};
use ad_shard::ShardRouter;

fn cfg() -> KvConfig {
    let mut c = KvConfig::volatile().with_shards(2);
    c.buckets_per_shard = 4;
    c.ckpt = CkptPolicy::Manual;
    c
}

/// First key of the form `{prefix}{i}` owned by shard `want`.
fn key_on(router: &ShardRouter, prefix: &str, want: usize) -> String {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .find(|k| router.shard_of(k) == want)
        .expect("some key lands on every shard")
}

// ---------------------------------------------------------------------------
// Layer 1: aligned crash matrix through the router.
// ---------------------------------------------------------------------------

#[test]
fn acked_cross_shard_batches_survive_every_aligned_crash() {
    const SHARDS: usize = 3;
    let disks: Vec<MemDisk> = (0..SHARDS).map(|_| MemDisk::new()).collect();
    let (router, _) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &disks);

    // Pre-resolve one key per shard so the script below is stable under
    // the hash partition.
    let keys: Vec<String> = (0..SHARDS).map(|s| key_on(&router, "k", s)).collect();
    let extra: Vec<String> = (0..SHARDS).map(|s| key_on(&router, "x", s)).collect();

    // Script: (shard indices touched, value suffix). One key per shard
    // per batch; `None` in ops means delete.
    let script: Vec<Vec<(usize, Option<&str>)>> = vec![
        vec![(0, Some("a"))],                                 // single-shard
        vec![(0, Some("b")), (1, Some("b"))],                 // 2-shard, coord 0
        vec![(2, Some("c"))],                                 // single-shard
        vec![(1, Some("d")), (2, Some("d"))],                 // 2-shard, coord 1
        vec![(0, Some("e")), (1, Some("e")), (2, Some("e"))], // 3-shard
        vec![(0, None), (2, Some("f"))],                      // cross-shard delete
        vec![(1, Some("g"))],
        vec![(0, Some("h")), (1, None), (2, Some("h"))], // mixed put/delete
    ];

    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    type Cut = (Vec<usize>, BTreeMap<String, Vec<u8>>);
    let mut cuts: Vec<Cut> = Vec::new();
    cuts.push((
        disks.iter().map(|d| d.journal_len()).collect(),
        model.clone(),
    ));
    for (round, ops) in script.iter().enumerate() {
        let mut b = WriteBatch::new();
        for (s, v) in ops {
            let k = if round % 2 == 0 {
                &keys[*s]
            } else {
                &extra[*s]
            };
            b = match v {
                Some(v) => {
                    model.insert(k.clone(), v.as_bytes().to_vec());
                    b.put(k, v.as_bytes())
                }
                None => {
                    model.remove(k);
                    b.delete(k)
                }
            };
        }
        router.write_batch(&b);
        cuts.push((
            disks.iter().map(|d| d.journal_len()).collect(),
            model.clone(),
        ));
    }
    assert_eq!(router.dump(), model);
    drop(router);

    let mut cross_shard_cuts = 0;
    for (lens, want) in &cuts {
        for synced_only in [false, true] {
            let imgs: Vec<MemDisk> = disks
                .iter()
                .zip(lens)
                .map(|(d, &len)| d.crash_image(len, 0, synced_only))
                .collect();
            let (re, reports) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &imgs);
            assert_eq!(
                &re.dump(),
                want,
                "aligned cut {lens:?} synced_only={synced_only} diverged\nreports: {reports:?}"
            );
        }
        if want.values().any(|v| v == b"e") {
            cross_shard_cuts += 1;
        }
    }
    assert!(
        cross_shard_cuts > 0,
        "matrix never covered the 3-shard batch"
    );
}

// ---------------------------------------------------------------------------
// Layer 2: mid-protocol windows with byte-level cuts.
// ---------------------------------------------------------------------------

/// A reusable open/wait gate (ack and release signals between the test
/// and a parked participant thread).
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut g = self.open.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// Index and byte length of the last append event in a disk's journal
/// (later events are syncs and other non-append operations).
fn last_append(d: &MemDisk) -> (usize, usize) {
    (0..d.journal_len())
        .rev()
        .find_map(|i| d.event_append_len(i).map(|len| (i, len)))
        .expect("disk has at least one append")
}

/// Mid-protocol disk images for gid 1: the participant has staged and
/// acked its slice; the coordinator's images are taken before, during
/// (torn), and after its decision record.
struct Window {
    /// Participant disk, synced prefix, taken after ack but before
    /// release: exactly what a killed participant leaves behind.
    part_staged: MemDisk,
    /// Participant disk after the full protocol (decided re-log done).
    part_full: MemDisk,
    /// Live participant disk (for byte cuts into the re-log append).
    part_live: MemDisk,
    /// Coordinator disk before the decision was ever attempted.
    coord_before: MemDisk,
    /// Coordinator disk with the decision record durable.
    coord_after: MemDisk,
    /// Live coordinator disk (for byte cuts into the decision append).
    coord_live: MemDisk,
    /// Journal index on the coordinator where the decision append sits.
    coord_decision_ev: usize,
}

const GID: u64 = 1; // coordinator shard 0 in the high bits, seq 1

fn build_window() -> Window {
    let disk_a = MemDisk::new();
    let disk_b = MemDisk::new();
    let (sa, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk_a.clone());
    let (sb, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk_b.clone());
    let sb = Arc::new(sb);

    // Independent local writes so recovery always has unrelated state
    // to preserve.
    sa.put("seed-a", b"sa");
    sb.put("seed-b", b"sb");

    let coord_before = disk_a.crash_image(disk_a.journal_len(), 0, true);

    // Participant side on its own thread: stage the slice durably, ack,
    // park until release.
    let acked = Gate::new();
    let release = Gate::new();
    let part = {
        let sb = Arc::clone(&sb);
        let acked = Arc::clone(&acked);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            let batch = WriteBatch::new().put("cross-b", b"vb");
            sb.apply_prepared(GID, &batch, move || acked.open(), move || release.wait());
        })
    };
    acked.wait();
    let part_staged = disk_b.crash_image(disk_b.journal_len(), 0, true);

    // Coordinator side: the participant already staged and acked, so
    // its prepare closure is a no-op; release opens the gate.
    let rel = Arc::clone(&release);
    sa.write_batch_coordinated(
        GID,
        &WriteBatch::new().put("cross-a", b"va"),
        &[RemoteSlice {
            prepare: Arc::new(|| {}),
            release: Arc::new(move || rel.open()),
        }],
    );
    let coord_decision_ev = last_append(&disk_a).0;
    let coord_after = disk_a.crash_image(disk_a.journal_len(), 0, true);
    part.join().expect("participant thread");
    let part_full = disk_b.crash_image(disk_b.journal_len(), 0, true);

    drop(sa);
    Window {
        part_staged,
        part_full,
        part_live: disk_b,
        coord_before,
        coord_after,
        coord_live: disk_a,
        coord_decision_ev,
    }
}

/// Reopen a (coordinator, participant) image pair through the router
/// and return the merged dump.
fn recover(coord: &MemDisk, part: &MemDisk) -> BTreeMap<String, Vec<u8>> {
    let imgs = [coord.clone(), part.clone()];
    let (re, _) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &imgs);
    re.dump()
}

/// All-or-none on the cross-shard pair, seeds always intact.
fn assert_atomic(dump: &BTreeMap<String, Vec<u8>>, expect_present: bool) {
    let a = dump.get("cross-a").map(|v| v.as_slice());
    let b = dump.get("cross-b").map(|v| v.as_slice());
    if expect_present {
        assert_eq!(a, Some(&b"va"[..]), "coordinator slice missing: {dump:?}");
        assert_eq!(b, Some(&b"vb"[..]), "participant slice missing: {dump:?}");
    } else {
        assert_eq!(a, None, "undecided coordinator slice surfaced: {dump:?}");
        assert_eq!(b, None, "undecided participant slice surfaced: {dump:?}");
    }
    assert_eq!(dump.get("seed-a").map(|v| v.as_slice()), Some(&b"sa"[..]));
    assert_eq!(dump.get("seed-b").map(|v| v.as_slice()), Some(&b"sb"[..]));
}

#[test]
fn killed_participant_after_ack_recovers_the_whole_batch() {
    let w = build_window();
    // The participant died holding only its staged prepare; the
    // coordinator's decision record is durable. Reconciliation must
    // prove the gid decided and apply the slice on the participant.
    assert_atomic(&recover(&w.coord_after, &w.part_staged), true);

    // Torn re-log: byte-level cuts inside the participant's decided
    // re-log append. The scan drops the torn record, the staged prepare
    // is still pending, and the coordinator's decision still resolves it.
    let (ev, len) = last_append(&w.part_live);
    for cut in [1, len / 2, len - 1] {
        assert_atomic(
            &recover(&w.coord_after, &w.part_live.crash_image(ev, cut, false)),
            true,
        );
    }
    // And the clean end state.
    assert_atomic(&recover(&w.coord_after, &w.part_full), true);
}

#[test]
fn killed_coordinator_before_decision_presumes_abort() {
    let w = build_window();
    // The coordinator died before its decision record: no surviving log
    // proves the gid committed, so the staged slice must never apply.
    assert_atomic(&recover(&w.coord_before, &w.part_staged), false);

    // Torn decision: byte-level cuts inside the coordinator's decision
    // append. A torn decided record is no decision.
    let len = w
        .coord_live
        .event_append_len(w.coord_decision_ev)
        .expect("decision event is an append");
    for cut in [1, len / 2, len - 1] {
        let coord = w.coord_live.crash_image(w.coord_decision_ev, cut, false);
        assert_atomic(&recover(&coord, &w.part_staged), false);
    }
    // The full decision append flips the outcome: same participant
    // image, now the batch applies everywhere.
    let coord = w.coord_live.crash_image(w.coord_decision_ev + 1, 0, false);
    assert_atomic(&recover(&coord, &w.part_staged), true);
}

#[test]
fn reconciliation_relogs_so_the_next_recovery_is_self_contained() {
    let w = build_window();
    let imgs = [w.coord_after.clone(), w.part_staged.clone()];
    let (re, _) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &imgs);
    // The window placed its keys at the store level, so read them store
    // level too (the router's hash partition is irrelevant here).
    assert_eq!(
        re.store(1).get("cross-b").as_deref(),
        Some(&b"vb"[..]),
        "first recovery resolved the staged slice"
    );
    drop(re);
    // The participant re-logged its slice as decided during the first
    // recovery, so its disk alone — no coordinator evidence — now
    // recovers the slice. (A store outside a router replays the same
    // records.)
    let (solo, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, imgs[1].clone());
    assert_eq!(
        solo.get("cross-b").as_deref(),
        Some(&b"vb"[..]),
        "second, stand-alone recovery lost the resolved slice"
    );
}

#[test]
fn aborted_prepare_does_not_block_later_writes_or_recoveries() {
    let w = build_window();
    let imgs = [w.coord_before.clone(), w.part_staged.clone()];
    let (re, _) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &imgs);
    assert_eq!(re.store(1).get("cross-b"), None);
    // The stale prepare record lingers in the participant's WAL but the
    // store keeps working: new writes land, and another recovery still
    // presumes abort rather than resurrecting the slice.
    re.put("after-abort", b"ok");
    re.sync();
    drop(re);
    let (re2, _) = ShardRouter::open_on_disks(&cfg(), SyncPolicy::PerCommit, &imgs);
    assert_eq!(re2.get("after-abort").as_deref(), Some(&b"ok"[..]));
    assert_eq!(
        re2.store(1).get("cross-b"),
        None,
        "aborted slice resurrected"
    );
}

// ---------------------------------------------------------------------------
// Layer 3: concurrent readers during live cross-shard commits.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_reader_never_observes_a_partial_batch() {
    let router = Arc::new(ShardRouter::open_volatile(2));
    // Two keys per shard; every batch writes all four to the same round
    // value, so a reader seeing one key of a shard's slice without its
    // sibling (or the siblings disagreeing) caught a partial batch.
    let k = [
        key_on(&router, "p", 0),
        key_on(&router, "q", 0),
        key_on(&router, "r", 1),
        key_on(&router, "s", 1),
    ];
    for key in &k {
        router.put(key, &0u64.to_le_bytes());
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let router = Arc::clone(&router);
            let k = k.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed_rounds = std::collections::BTreeSet::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = router.get_many(&[&k[0], &k[1], &k[2], &k[3]]);
                    let round = |v: &Option<Arc<[u8]>>| {
                        u64::from_le_bytes(v.as_deref().unwrap().try_into().unwrap())
                    };
                    let (p, q, r, s) = (
                        round(&got[0]),
                        round(&got[1]),
                        round(&got[2]),
                        round(&got[3]),
                    );
                    assert_eq!(p, q, "partial batch on shard 0");
                    assert_eq!(r, s, "partial batch on shard 1");
                    observed_rounds.insert(p);
                }
                observed_rounds.len()
            })
        })
        .collect();

    for round in 1u64..400 {
        let v = round.to_le_bytes();
        router.write_batch(
            &WriteBatch::new()
                .put(&k[0], v)
                .put(&k[1], v)
                .put(&k[2], v)
                .put(&k[3], v),
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let distinct: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(distinct >= 2, "readers never caught the store mid-flight");
}
