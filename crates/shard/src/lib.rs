//! # ad-shard — cross-shard transactions as a 2-phase commit across runtimes
//!
//! One [`ad_kv::KvStore`] is an *island*: its runtime, its clock, its
//! quiescence, its WAL. This crate partitions a key space over N such
//! islands and makes a multi-shard write batch atomic **and durable**
//! across all of them, by running atomic deferral's hold-until-done
//! discipline as the lock-holding half of a two-phase commit
//! (DESIGN.md §14).
//!
//! ## The protocol in one paragraph
//!
//! The lowest touched shard coordinates. Its transaction applies the
//! local slice and `atomic_defer`s, over its own shard locks, one
//! *prepare* operation per remote participant (ascending shard order)
//! plus a final *decision* operation. Each prepare sends the
//! participant its slice over the [`Transport`] and blocks until the
//! participant acks — and a participant acks only after its slice is
//! staged in its own WAL ([`ad_kv::RedoKind::Prepare`]) and fsynced,
//! with its own shard locks held. The decision operation appends the
//! coordinator's gid-tagged [`ad_kv::RedoKind::Decided`] record — the
//! commit point of the whole batch — and broadcasts release; each
//! participant then re-logs its slice as decided and unlocks. Locks are
//! held everywhere from commit to release: **a reader on any shard can
//! never observe a partial cross-shard batch**, and when the
//! coordinator's call returns, the batch is durable on every shard.
//!
//! Crashes recover by presumed abort: a staged slice whose gid no
//! surviving log proves decided is never applied
//! ([`ShardRouter::from_stores`] reconciles; see DESIGN.md §14 for the
//! killed-coordinator / killed-participant matrix).
//!
//! ## Why it cannot deadlock
//!
//! A coordinator only waits on *higher* shard ids (it is the minimum
//! touched shard and prepares ascend); a blocked participant's lock
//! holder is always a protocol step whose release depends only on
//! still-higher shards. Wait-for edges strictly increase in shard id,
//! so no cycle closes.
//!
//! ## Observability
//!
//! Every store keeps its own runtime; [`ShardRouter::take_trace`]
//! merges the per-runtime rings with [`ad_stm::Trace::merge`] so one
//! cross-shard commit renders as a single timeline tagged `r<id>.t<n>`,
//! with `shard_prepare` / `shard_ack` / `shard_release` instants on
//! both sides. [`ShardRouter::stats`] merges the runtimes' counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod router;
pub mod transport;

/// Loom-style model of the hold-until-all-ack invariant: a coordinator
/// and participants exchanging prepare/ack/release while an observer
/// tries to catch a partially visible batch. Compiled only under
/// `RUSTFLAGS="--cfg loom"` test builds — see VERIFICATION.md.
#[cfg(all(test, loom))]
mod verify;

pub use router::ShardRouter;
pub use transport::{Frame, LocalTransport, Transport};
