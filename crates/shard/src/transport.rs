//! The frame protocol between shards, and its in-process implementation.
//!
//! [`Transport`] is deliberately tiny — fire-and-forget frame delivery —
//! so a wire implementation (ad-net style: length-prefixed, CRC-guarded)
//! can slot in later without touching the router. [`LocalTransport`]
//! backs it with in-process queues, two per shard:
//!
//! - the **data** queue carries [`Frame::Prepare`] (and barriers). Its
//!   consumer may block for the full prepare→release window of a gid,
//!   which serializes staged slices per shard — exactly the exclusion
//!   the participant's shard locks would enforce anyway.
//! - the **control** queue carries [`Frame::Ack`] / [`Frame::Release`] /
//!   [`Frame::BarrierAck`]. Its consumer never blocks on protocol
//!   progress, so acks and releases overtake a parked prepare — without
//!   this split, a participant waiting for release could never hear it.

use std::collections::VecDeque;
use std::sync::Arc;

use ad_kv::RedoOps;
use ad_support::sync::{Condvar, Mutex};

/// One protocol message. `Prepare`/`Ack`/`Release` are the 2-phase
/// commit itself; `Barrier`/`BarrierAck` are the quiesce handshake
/// [`crate::ShardRouter::checkpoint_all`] uses; `Shutdown` is local
/// queue control (a wire transport would map it to connection close).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Coordinator → participant: stage this slice of batch `gid`
    /// durably, ack, and hold it invisible until release.
    Prepare {
        /// Global cross-shard transaction id (coordinator shard in the
        /// high 16 bits).
        gid: u64,
        /// Coordinator shard index — where the ack goes back to.
        from: u16,
        /// The participant's slice, in application order.
        ops: RedoOps,
    },
    /// Participant → coordinator: the slice of `gid` is staged durably.
    Ack {
        /// The acked transaction.
        gid: u64,
        /// Participant shard index.
        from: u16,
    },
    /// Coordinator → participant: the decision record for `gid` is
    /// durable — expose the slice.
    Release {
        /// The decided transaction.
        gid: u64,
    },
    /// Drain marker: answered with [`Frame::BarrierAck`] only after
    /// every earlier data frame fully resolved.
    Barrier {
        /// Caller-chosen handshake id.
        id: u64,
        /// Shard whose control queue receives the ack.
        from: u16,
    },
    /// Answer to [`Frame::Barrier`].
    BarrierAck {
        /// The handshake id being answered.
        id: u64,
        /// The shard that drained.
        from: u16,
    },
    /// Stop the receiving worker (in-process control).
    Shutdown,
}

/// Fire-and-forget frame delivery to a shard. Sends must not block on
/// protocol progress (queueing is fine; waiting for the peer to act is
/// not) — the router's liveness argument depends on it.
pub trait Transport: Send + Sync {
    /// Deliver `frame` to shard `to`.
    fn send(&self, to: u16, frame: Frame);
}

struct Queue {
    frames: Mutex<VecDeque<Frame>>,
    cv: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            frames: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, frame: Frame) {
        self.frames.lock().push_back(frame);
        self.cv.notify_all();
    }

    fn pop_blocking(&self) -> Frame {
        let mut g = self.frames.lock();
        loop {
            if let Some(f) = g.pop_front() {
                return f;
            }
            self.cv.wait(&mut g);
        }
    }
}

/// In-process [`Transport`]: one data + one control queue per shard,
/// consumed by the router's worker threads.
pub struct LocalTransport {
    data: Vec<Arc<Queue>>,
    ctl: Vec<Arc<Queue>>,
}

impl LocalTransport {
    /// Queues for `n` shards.
    pub fn new(n: usize) -> Self {
        LocalTransport {
            data: (0..n).map(|_| Arc::new(Queue::new())).collect(),
            ctl: (0..n).map(|_| Arc::new(Queue::new())).collect(),
        }
    }

    /// Number of shards this transport serves.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when built for zero shards (degenerate; routers refuse it).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Blocking receive on shard `s`'s data queue (prepares, barriers).
    pub(crate) fn recv_data(&self, s: usize) -> Frame {
        self.data[s].pop_blocking()
    }

    /// Blocking receive on shard `s`'s control queue (acks, releases).
    pub(crate) fn recv_ctl(&self, s: usize) -> Frame {
        self.ctl[s].pop_blocking()
    }
}

impl Transport for LocalTransport {
    fn send(&self, to: u16, frame: Frame) {
        let to = to as usize;
        match frame {
            Frame::Prepare { .. } | Frame::Barrier { .. } => self.data[to].push(frame),
            Frame::Ack { .. } | Frame::Release { .. } | Frame::BarrierAck { .. } => {
                self.ctl[to].push(frame)
            }
            // Shutdown is broadcast by the router to both queues
            // explicitly; a bare send targets data.
            Frame::Shutdown => self.data[to].push(frame),
        }
    }
}

impl LocalTransport {
    /// Push [`Frame::Shutdown`] to both of shard `s`'s queues.
    pub(crate) fn shutdown(&self, s: usize) {
        self.data[s].push(Frame::Shutdown);
        self.ctl[s].push(Frame::Shutdown);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn frames_route_to_the_right_queue() {
        let t = LocalTransport::new(2);
        t.send(
            1,
            Frame::Prepare {
                gid: 7,
                from: 0,
                ops: vec![("k".into(), None)],
            },
        );
        t.send(1, Frame::Release { gid: 7 });
        t.send(0, Frame::Ack { gid: 7, from: 1 });
        // Control frames are readable even though a prepare is still
        // queued on data — the split that keeps release deliverable.
        assert_eq!(t.recv_ctl(1), Frame::Release { gid: 7 });
        assert_eq!(t.recv_ctl(0), Frame::Ack { gid: 7, from: 1 });
        match t.recv_data(1) {
            Frame::Prepare {
                gid: 7,
                from: 0,
                ops,
            } => {
                assert_eq!(ops, vec![("k".to_string(), None)]);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}
