//! The shard router: key partitioning, the cross-shard commit itself,
//! recovery reconciliation, and merged observability.

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;

use ad_kv::{
    CkptReport, KvConfig, KvStore, MemDisk, RecoveryReport, RemoteSlice, SyncPolicy, WriteBatch,
};
use ad_stm::{StatsReport, Trace};
use ad_support::sync::atomic::{AtomicU64, Ordering};
use ad_support::sync::{Condvar, Mutex, RwLock};

use crate::transport::{Frame, LocalTransport, Transport};

/// Low 48 bits of a gid: the per-router sequence. The high 16 bits name
/// the coordinator shard, so recovery can say who held the decision.
const GID_SEQ_MASK: u64 = (1 << 48) - 1;

/// Barrier handshake ids live above the gid space.
const BARRIER_BASE: u64 = 1 << 63;

/// Signal kinds — the tag keeps a participant's release wait from
/// consuming its own just-sent ack (both are keyed by `(gid, shard)`).
const SIG_ACK: u8 = 0;
const SIG_RELEASE: u8 = 1;
const SIG_BARRIER: u8 = 2;

/// One-shot signals between transport workers and protocol waiters:
/// `wait` blocks until a matching `signal` arrived, then consumes it.
struct SignalTable {
    set: Mutex<HashSet<(u8, u64, u16)>>,
    cv: Condvar,
}

impl SignalTable {
    fn new() -> Self {
        SignalTable {
            set: Mutex::new(HashSet::new()),
            cv: Condvar::new(),
        }
    }

    fn signal(&self, kind: u8, id: u64, shard: u16) {
        self.set.lock().insert((kind, id, shard));
        self.cv.notify_all();
    }

    fn wait(&self, kind: u8, id: u64, shard: u16) {
        let mut g = self.set.lock();
        while !g.remove(&(kind, id, shard)) {
            self.cv.wait(&mut g);
        }
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A key space partitioned over N independent [`KvStore`]s (each with
/// its own runtime and WAL), with cross-shard write batches committed
/// by the 2-phase protocol of DESIGN.md §14.
///
/// Reads and single-shard batches go straight to the owning store and
/// cost exactly what they cost unsharded. A batch spanning shards picks
/// the lowest touched shard as coordinator and pays one prepare/ack
/// round trip per remote participant plus the decision fsync.
pub struct ShardRouter {
    stores: Vec<Arc<KvStore>>,
    sender: Arc<dyn Transport>,
    signals: Arc<SignalTable>,
    /// Readers: in-flight cross-shard commits. Writer:
    /// [`ShardRouter::checkpoint_all`], which must not truncate a
    /// decision record some shard's staged slice still depends on.
    ckpt_gate: RwLock<()>,
    next_seq: AtomicU64,
    next_barrier: AtomicU64,
    local: Arc<LocalTransport>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardRouter {
    /// Route over `n` fresh volatile stores (bench baseline: no WAL, so
    /// the protocol's fsyncs are no-ops but the lock discipline is
    /// identical).
    pub fn open_volatile(n: usize) -> ShardRouter {
        Self::from_stores(
            (0..n)
                .map(|_| {
                    Arc::new(
                        KvStore::open(KvConfig::volatile()).expect("volatile open is infallible"),
                    )
                })
                .collect(),
        )
    }

    /// Open shard `i` on `disks[i]` (two-tier recovery per shard), then
    /// reconcile cross-shard outcomes across all of them — the crash
    /// recovery entry point for byte-level [`MemDisk`] images.
    pub fn open_on_disks(
        cfg: &KvConfig,
        sync: SyncPolicy,
        disks: &[MemDisk],
    ) -> (ShardRouter, Vec<RecoveryReport>) {
        let mut stores = Vec::with_capacity(disks.len());
        let mut reports = Vec::with_capacity(disks.len());
        for disk in disks {
            let (store, report) = KvStore::open_on_disk(cfg, sync, disk.clone());
            stores.push(Arc::new(store));
            reports.push(report);
        }
        (Self::from_stores(stores), reports)
    }

    /// Assemble a router over already-opened stores.
    ///
    /// Reconciliation runs first: every shard's pending prepares are
    /// checked against the union of all shards' decided gids — a gid
    /// any surviving log proves committed is applied (and re-logged as
    /// decided, so the *next* recovery needs no cross-shard evidence);
    /// everything else is presumed aborted and never applied. The gid
    /// sequence resumes above every gid seen in any log, so a lingering
    /// aborted prepare can never collide with a fresh transaction.
    pub fn from_stores(stores: Vec<Arc<KvStore>>) -> ShardRouter {
        assert!(!stores.is_empty(), "a router needs at least one shard");
        assert!(stores.len() <= u16::MAX as usize, "shard ids are u16");

        let mut decided: HashSet<u64> = HashSet::new();
        let mut max_seen = 0u64;
        for store in &stores {
            for &gid in store.recovered_decided_gids() {
                decided.insert(gid);
                max_seen = max_seen.max(gid & GID_SEQ_MASK);
            }
            for gid in store.pending_prepared_gids() {
                max_seen = max_seen.max(gid & GID_SEQ_MASK);
            }
        }
        for store in &stores {
            for gid in store.pending_prepared_gids() {
                if decided.contains(&gid) {
                    store.resolve_prepared(gid);
                } else {
                    store.abort_prepared(gid);
                }
            }
        }

        let n = stores.len();
        let local = Arc::new(LocalTransport::new(n));
        let sender: Arc<dyn Transport> = Arc::clone(&local) as Arc<dyn Transport>;
        let signals = Arc::new(SignalTable::new());
        let mut workers = Vec::with_capacity(2 * n);
        for (s, shard_store) in stores.iter().enumerate() {
            // Data worker: runs the participant side. It blocks inside
            // `apply_prepared` for the prepare→release window, which
            // serializes staged slices per shard.
            let store = Arc::clone(shard_store);
            let rx = Arc::clone(&local);
            let tx = Arc::clone(&sender);
            let sig = Arc::clone(&signals);
            workers.push(std::thread::spawn(move || loop {
                match rx.recv_data(s) {
                    Frame::Prepare { gid, from, ops } => {
                        let me = s as u16;
                        let ack_tx = Arc::clone(&tx);
                        let rel_sig = Arc::clone(&sig);
                        store.apply_prepared(
                            gid,
                            &WriteBatch::from_ops(ops),
                            move || ack_tx.send(from, Frame::Ack { gid, from: me }),
                            move || rel_sig.wait(SIG_RELEASE, gid, me),
                        );
                    }
                    Frame::Barrier { id, from } => {
                        tx.send(from, Frame::BarrierAck { id, from: s as u16 });
                    }
                    Frame::Shutdown => return,
                    _ => {}
                }
            }));
            // Control worker: never blocks on protocol progress — it
            // only flips signals, so releases and acks overtake any
            // parked prepare.
            let rx = Arc::clone(&local);
            let sig = Arc::clone(&signals);
            workers.push(std::thread::spawn(move || loop {
                match rx.recv_ctl(s) {
                    Frame::Ack { gid, from } => sig.signal(SIG_ACK, gid, from),
                    Frame::Release { gid } => sig.signal(SIG_RELEASE, gid, s as u16),
                    Frame::BarrierAck { id, from } => sig.signal(SIG_BARRIER, id, from),
                    Frame::Shutdown => return,
                    _ => {}
                }
            }));
        }

        ShardRouter {
            stores,
            sender,
            signals,
            ckpt_gate: RwLock::new(()),
            next_seq: AtomicU64::new(max_seen + 1),
            next_barrier: AtomicU64::new(0),
            local,
            workers,
        }
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) as usize) % self.stores.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.stores.len()
    }

    /// Direct access to shard `s`'s store (tests, per-shard stats).
    pub fn store(&self, s: usize) -> &Arc<KvStore> {
        &self.stores[s]
    }

    /// Point lookup on the owning shard (serializable there).
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        self.stores[self.shard_of(key)].get(key)
    }

    /// Multi-key lookup: keys grouped by shard, one transaction per
    /// shard. Each shard's slice of the result is a serializable
    /// snapshot of that shard; the combination across shards is *not* a
    /// single snapshot (DESIGN.md §14 — the write protocol guarantees
    /// no shard ever shows a partial batch, which is what keeps this
    /// useful, but two shards may be read at different moments).
    pub fn get_many(&self, keys: &[&str]) -> Vec<Option<Arc<[u8]>>> {
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            by_shard.entry(self.shard_of(key)).or_default().push(i);
        }
        let mut out = vec![None; keys.len()];
        for (s, idxs) in by_shard {
            let ks: Vec<&str> = idxs.iter().map(|&i| keys[i]).collect();
            for (i, v) in idxs.iter().zip(self.stores[s].get_many(&ks)) {
                out[*i] = v;
            }
        }
        out
    }

    /// Insert or overwrite one key (single-shard by construction).
    pub fn put(&self, key: &str, value: &[u8]) {
        self.write_batch(&WriteBatch::new().put(key, value));
    }

    /// Delete one key.
    pub fn delete(&self, key: &str) {
        self.write_batch(&WriteBatch::new().delete(key));
    }

    /// Apply an atomic multi-key batch across shards. A batch touching
    /// one shard commits exactly like [`KvStore::write_batch`]. A batch
    /// spanning shards runs the 2-phase protocol: when this returns,
    /// every slice is durable on its shard, and at no point could any
    /// reader anywhere observe some slices without the others.
    pub fn write_batch(&self, batch: &WriteBatch) {
        let mut slices: BTreeMap<usize, ad_kv::RedoOps> = BTreeMap::new();
        for (k, v) in batch.ops() {
            slices
                .entry(self.shard_of(k))
                .or_default()
                .push((k.to_string(), v.map(|v| v.to_vec())));
        }
        if slices.is_empty() {
            return;
        }
        if slices.len() == 1 {
            let (s, ops) = slices.into_iter().next().expect("nonempty");
            self.stores[s].write_batch(&WriteBatch::from_ops(ops));
            return;
        }

        // Cross-shard: coordinator = lowest touched shard; prepares go
        // out in ascending shard order (BTreeMap iteration), which is
        // the deadlock-freedom discipline.
        let _inflight = self.ckpt_gate.read();
        let gid = {
            let coord = *slices.keys().next().expect("nonempty") as u64;
            (coord << 48) | (self.next_seq.fetch_add(1, Ordering::Relaxed) & GID_SEQ_MASK)
        };
        let mut it = slices.into_iter();
        let (coord, coord_ops) = it.next().expect("nonempty");
        let remotes: Vec<RemoteSlice> = it
            .map(|(p, ops)| {
                let p = p as u16;
                let from = coord as u16;
                let ops = Arc::new(ops);
                let prep_tx = Arc::clone(&self.sender);
                let prep_sig = Arc::clone(&self.signals);
                let rel_tx = Arc::clone(&self.sender);
                RemoteSlice {
                    prepare: Arc::new(move || {
                        prep_tx.send(
                            p,
                            Frame::Prepare {
                                gid,
                                from,
                                ops: (*ops).clone(),
                            },
                        );
                        prep_sig.wait(SIG_ACK, gid, p);
                    }),
                    release: Arc::new(move || rel_tx.send(p, Frame::Release { gid })),
                }
            })
            .collect();
        self.stores[coord].write_batch_coordinated(gid, &WriteBatch::from_ops(coord_ops), &remotes);
    }

    /// Block until every shard's deferred durability work has drained.
    pub fn sync(&self) {
        for store in &self.stores {
            store.sync();
        }
    }

    /// Block until every shard's transport data queue has drained: every
    /// participant slice for a batch whose `write_batch` already returned
    /// has finished its release-side work (decided re-log, apply, trace
    /// instants). The participant half of a cross-shard commit runs
    /// asynchronously on the transport worker, so callers that want to
    /// *observe* a completed commit — drain a merged trace, compare
    /// dumps — quiesce first. New commits are not gated out; callers
    /// needing a frozen world ([`ShardRouter::checkpoint_all`]) hold the
    /// checkpoint gate around this.
    pub fn quiesce(&self) {
        let id = BARRIER_BASE | self.next_barrier.fetch_add(1, Ordering::Relaxed);
        for s in 0..self.stores.len() {
            self.sender.send(s as u16, Frame::Barrier { id, from: 0 });
        }
        for s in 0..self.stores.len() {
            self.signals.wait(SIG_BARRIER, id, s as u16);
        }
    }

    /// Checkpoint every shard at a cross-shard-quiescent point: new
    /// cross-shard commits are gated out, a barrier drains every
    /// shard's staged-but-unreleased slices, and only then does each
    /// shard snapshot and truncate. Without the quiesce, a coordinator
    /// could truncate the decision record a participant's staged slice
    /// still needs at its next recovery (DESIGN.md §14).
    pub fn checkpoint_all(&self) -> io::Result<Vec<CkptReport>> {
        let _gate = self.ckpt_gate.write();
        self.quiesce();
        self.stores.iter().map(|s| s.checkpoint()).collect()
    }

    /// Merged STM counters across every shard's runtime
    /// ([`StatsReport::merge`]): one report for the whole key space.
    pub fn stats(&self) -> StatsReport {
        let mut iter = self.stores.iter();
        let first = iter.next().expect("at least one shard");
        let mut acc = first.runtime().snapshot_stats();
        for store in iter {
            acc.merge(&store.runtime().snapshot_stats());
        }
        acc
    }

    /// Enable or disable tracing on every shard's runtime.
    pub fn set_tracing(&self, on: bool) {
        for store in &self.stores {
            store.runtime().set_tracing(on);
        }
    }

    /// Drain and merge every runtime's trace ring into one timeline
    /// ([`Trace::merge`]): a cross-shard commit shows its coordinator
    /// and participant halves interleaved by timestamp, rows tagged
    /// `r<runtime>.t<thread>`.
    pub fn take_trace(&self) -> Trace {
        Trace::merge(self.stores.iter().map(|s| s.runtime().take_trace()))
    }

    /// Full contents across all shards — test/verification helper.
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        let mut out = BTreeMap::new();
        for store in &self.stores {
            out.append(&mut store.dump());
        }
        out
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.stores.iter().map(|s| s.len()).sum()
    }

    /// True when no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        for s in 0..self.stores.len() {
            self.local.shutdown(s);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    /// `count` keys all owned by shard `want` of an `n`-shard router.
    fn keys_on(router: &ShardRouter, want: usize, count: usize) -> Vec<String> {
        (0..)
            .map(|i| format!("k{i}"))
            .filter(|k| router.shard_of(k) == want)
            .take(count)
            .collect()
    }

    #[test]
    fn single_shard_batches_and_reads_route_by_key() {
        let router = ShardRouter::open_volatile(4);
        router.put("alpha", b"1");
        router.put("beta", b"2");
        assert_eq!(router.get("alpha").as_deref(), Some(&b"1"[..]));
        assert_eq!(router.get("beta").as_deref(), Some(&b"2"[..]));
        assert_eq!(router.len(), 2);
        let on_shard: usize = (0..router.shard_count())
            .map(|s| router.store(s).len())
            .sum();
        assert_eq!(on_shard, 2, "keys live on exactly one shard each");
    }

    #[test]
    fn cross_shard_batch_commits_atomically_everywhere() {
        let router = ShardRouter::open_volatile(3);
        let a = keys_on(&router, 0, 1).remove(0);
        let b = keys_on(&router, 1, 1).remove(0);
        let c = keys_on(&router, 2, 1).remove(0);
        router.write_batch(
            &WriteBatch::new()
                .put(a.as_str(), b"A")
                .put(b.as_str(), b"B")
                .put(c.as_str(), b"C"),
        );
        assert_eq!(router.get(&a).as_deref(), Some(&b"A"[..]));
        assert_eq!(router.get(&b).as_deref(), Some(&b"B"[..]));
        assert_eq!(router.get(&c).as_deref(), Some(&b"C"[..]));
        // And a follow-up cross-shard batch over the same keys (delete
        // half) also lands atomically.
        router.write_batch(&WriteBatch::new().delete(a.as_str()).put(c.as_str(), b"C2"));
        assert_eq!(router.get(&a), None);
        assert_eq!(router.get(&c).as_deref(), Some(&b"C2"[..]));
    }

    #[test]
    fn get_many_spans_shards() {
        let router = ShardRouter::open_volatile(2);
        let a = keys_on(&router, 0, 1).remove(0);
        let b = keys_on(&router, 1, 1).remove(0);
        router.write_batch(
            &WriteBatch::new()
                .put(a.as_str(), b"1")
                .put(b.as_str(), b"2"),
        );
        let got = router.get_many(&[a.as_str(), "missing", b.as_str()]);
        assert_eq!(got[0].as_deref(), Some(&b"1"[..]));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn merged_stats_count_all_runtimes() {
        let router = ShardRouter::open_volatile(2);
        let a = keys_on(&router, 0, 1).remove(0);
        let b = keys_on(&router, 1, 1).remove(0);
        router.write_batch(
            &WriteBatch::new()
                .put(a.as_str(), b"1")
                .put(b.as_str(), b"2"),
        );
        let merged = router.stats();
        let per_shard: u64 = (0..2)
            .map(|s| router.store(s).runtime().snapshot_stats().counters.commits)
            .sum();
        assert_eq!(merged.counters.commits, per_shard);
        assert!(
            merged.counters.commits >= 2,
            "both shards committed their slice"
        );
    }

    #[test]
    fn merged_trace_tags_both_runtimes_for_one_commit() {
        let router = ShardRouter::open_volatile(2);
        router.set_tracing(true);
        let a = keys_on(&router, 0, 1).remove(0);
        let b = keys_on(&router, 1, 1).remove(0);
        router.write_batch(
            &WriteBatch::new()
                .put(a.as_str(), b"1")
                .put(b.as_str(), b"2"),
        );
        // The participant's release-side events land asynchronously (its
        // re-log runs on the transport worker after the coordinator's
        // call returned): quiesce so the drain below races no writer —
        // draining a *live* ring can lose the event being written.
        router.quiesce();
        router.set_tracing(false);
        let trace = router.take_trace();
        let runtimes = trace.runtime_ids();
        assert_eq!(
            runtimes.len(),
            2,
            "one timeline, two runtimes: {runtimes:?}"
        );
        let rendered = trace.render();
        for kind in ["shard_prepare", "shard_ack", "shard_release"] {
            assert!(rendered.contains(kind), "missing {kind} in:\n{rendered}");
        }
        // Coordinator emits prepare/ack/release; participant emits its
        // own triple: exactly 6 protocol instants for one commit.
        assert_eq!(rendered.matches("shard_").count(), 6, "in:\n{rendered}");
    }
}
