//! Loom-style model of the cross-shard commit's hold-until-all-ack
//! invariant (`RUSTFLAGS="--cfg loom"`).
//!
//! The protocol's atomicity argument (DESIGN.md §14) is a lock-ordering
//! claim: the coordinator's shard locks — taken atomically with its
//! commit by `atomic_defer` — are released only after every participant
//! has staged its slice and acked, and the decision itself is logged.
//! If that ever breaks, a reader on the coordinator shard can observe
//! the coordinator's slice of a batch whose remote slices do not yet
//! exist anywhere durable — the partial cross-shard state the whole
//! design exists to rule out.
//!
//! [`commit_holds_until_all_acks`] runs the *real* store primitives —
//! [`KvStore::write_batch_coordinated`] and [`KvStore::apply_prepared`]
//! on two volatile stores, full STM underneath — under the model
//! scheduler, with the transport replaced by model-aware gates. An
//! observer asserts, on every schedule the scheduler can find:
//!
//! 1. coordinator slice visible ⇒ the participant has staged and acked;
//! 2. participant slice visible ⇒ the decision ran (release was sent).
//!
//! [`model_catches_release_before_last_ack`] is the seeded regression:
//! a coordinator that commits its slice in a plain transaction and only
//! *then* runs the prepare round — the classic commit-before-coordinate
//! bug an executor or router refactor could introduce. Its locks release
//! at commit, before any ack, and the checker must find the schedule
//! where the observer catches invariant 1 broken. If it stops finding
//! it, the green model has rotted into always-green.

use std::sync::Arc;

use ad_kv::{KvConfig, KvStore, RemoteSlice, WriteBatch};
use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};
use ad_support::sync::atomic::{AtomicBool, Ordering};
use ad_support::sync::{Condvar, Mutex};

/// A model-aware one-shot gate (the stand-in for transport delivery).
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut g = self.open.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }
}

fn store() -> Arc<KvStore> {
    let mut cfg = KvConfig::volatile().with_shards(1);
    cfg.buckets_per_shard = 1;
    Arc::new(KvStore::open(cfg).expect("volatile open"))
}

const GID: u64 = 1;

/// Wire up one coordinator, one participant, and one observer. When
/// `buggy` is set, the coordinator commits its slice *before* running
/// the prepare round instead of deferring the round over its locks.
fn scenario(e: &mut Exec, buggy: bool) {
    let coord = store();
    let part = store();
    let acked = Arc::new(AtomicBool::new(false));
    let decided = Arc::new(AtomicBool::new(false));
    let ack_gate = Gate::new();
    let rel_gate = Gate::new();

    {
        let part = Arc::clone(&part);
        let acked = Arc::clone(&acked);
        let ack_gate = Arc::clone(&ack_gate);
        let rel_gate = Arc::clone(&rel_gate);
        e.spawn(move || {
            let batch = WriteBatch::new().put("kb", b"vb");
            let ack = move || {
                acked.store(true, Ordering::SeqCst);
                ack_gate.open();
            };
            let rel = move || rel_gate.wait();
            part.apply_prepared(GID, &batch, ack, rel);
        });
    }

    {
        let coord_store = Arc::clone(&coord);
        let decided = Arc::clone(&decided);
        let ack_gate = Arc::clone(&ack_gate);
        let rel_gate = Arc::clone(&rel_gate);
        e.spawn(move || {
            let batch = WriteBatch::new().put("ka", b"va");
            if buggy {
                // BUG (deliberate): plain commit first — the shard locks
                // release here — then the prepare/ack round and release.
                coord_store.write_batch(&batch);
                ack_gate.wait();
                decided.store(true, Ordering::SeqCst);
                rel_gate.open();
            } else {
                let rel = {
                    let decided = Arc::clone(&decided);
                    let rel_gate = Arc::clone(&rel_gate);
                    move || {
                        decided.store(true, Ordering::SeqCst);
                        rel_gate.open();
                    }
                };
                coord_store.write_batch_coordinated(
                    GID,
                    &batch,
                    &[RemoteSlice {
                        prepare: Arc::new(move || ack_gate.wait()),
                        release: Arc::new(rel),
                    }],
                );
            }
        });
    }

    e.spawn(move || {
        for _ in 0..2 {
            if coord.get("ka").is_some() {
                // Invariant 1: the coordinator's slice became visible,
                // so its locks released — legal only past the last ack.
                assert!(
                    acked.load(Ordering::SeqCst),
                    "coordinator slice visible before every participant acked"
                );
            }
            if part.get("kb").is_some() {
                // Invariant 2: a participant exposes its slice only
                // after the decision ran and released it.
                assert!(
                    decided.load(Ordering::SeqCst),
                    "participant slice visible before the decision"
                );
            }
        }
    });
}

/// Green sweep: both invariants hold across every explored interleaving
/// of the real coordinator/participant primitives.
#[test]
fn commit_holds_until_all_acks() {
    check(
        "shard-2pc-hold-until-all-acks",
        CheckOpts {
            seeds: 400,
            max_steps: 500_000,
        },
        |e| scenario(e, false),
    );
}

/// Seeded regression: with the commit-before-coordinate coordinator the
/// checker must find a schedule where invariant 1 breaks. Guards the
/// green model's sensitivity.
#[test]
fn model_catches_release_before_last_ack() {
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 400,
            max_steps: 500_000,
        },
        |e| scenario(e, true),
    );
    let (seed, msg) =
        violation.expect("the commit-before-coordinate variant no longer races; re-tune the model");
    assert!(
        msg.contains("before every participant acked"),
        "expected a hold-until-ack violation, got (seed {seed}): {msg}"
    );
}
