//! The transactional-I/O microbenchmark (paper §6.1, Listing 6; Figure 2).
//!
//! N threads cooperate to complete a fixed number of operations. Each
//! operation produces content (reading and updating shared, transactional
//! state), identifies a file, and performs I/O against it: open the file,
//! read its length, append a record derived from (content, length), close —
//! or, in the `keep_open` configuration of Figure 2d, just append.
//!
//! Four synchronization strategies, matching the paper's series:
//!
//! * **CGL** — one coarse-grained lock around content production + I/O.
//! * **FGL** — one fine-grained lock per file (non-transactional baseline
//!   added in Figures 2b–2d).
//! * **irrevoc** — a transaction that turns irrevocable to perform the I/O
//!   inline, serializing all transactions (the `synchronized` version of
//!   Listing 6).
//! * **defer** — a transaction that atomically defers the I/O on the file's
//!   deferrable object (the `atomic_defer` version of Listing 6).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Duration;

use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, TVar, TmConfig};
use ad_support::sync::Mutex;

use crate::harness::{run_fixed_work, Measurement};

/// Which synchronization strategy an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Coarse-grained lock.
    Cgl,
    /// Fine-grained (per-file) locks.
    Fgl,
    /// Irrevocable transactions.
    Irrevoc,
    /// Atomic deferral.
    Defer,
}

impl Variant {
    /// Series label used in tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Variant::Cgl => "CGL",
            Variant::Fgl => "FGL",
            Variant::Irrevoc => "irrevoc",
            Variant::Defer => "defer",
        }
    }

    /// All variants, in the paper's legend order.
    pub fn all() -> [Variant; 4] {
        [Variant::Cgl, Variant::Irrevoc, Variant::Defer, Variant::Fgl]
    }
}

/// Configuration of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct IoBenchConfig {
    /// Number of files (1, 2, 4 in Figures 2a–2c).
    pub files: usize,
    /// Total operations completed cooperatively by all threads (1M in the
    /// paper; smaller for quick runs).
    pub total_ops: usize,
    /// Figure 2d: keep files open for the whole run and only append.
    pub keep_open: bool,
    /// Directory for the benchmark files.
    pub dir: PathBuf,
    /// Use the simulated-HTM runtime instead of STM for the TM variants
    /// ("trends for HTM are the same", §6.1).
    pub htm: bool,
    /// Enable the observability layer (`Runtime::set_tracing`) on the TM
    /// variants' runtime, so the returned [`Measurement::stats`] report has
    /// commit-latency/backoff/defer histograms filled.
    pub obs: bool,
}

impl IoBenchConfig {
    /// A configuration with `files` files and `total_ops` operations in the
    /// system temp directory.
    pub fn new(files: usize, total_ops: usize) -> Self {
        IoBenchConfig {
            files,
            total_ops,
            keep_open: false,
            dir: std::env::temp_dir(),
            htm: false,
            obs: false,
        }
    }

    /// Enable observability (event tracing + full histograms) on the TM
    /// variants.
    pub fn with_obs(mut self, on: bool) -> Self {
        self.obs = on;
        self
    }

    /// Enable the Figure 2d keep-open mode.
    pub fn with_keep_open(mut self, on: bool) -> Self {
        self.keep_open = on;
        self
    }

    /// Run TM variants on a simulated-HTM runtime.
    pub fn with_htm(mut self, on: bool) -> Self {
        self.htm = on;
        self
    }

    fn paths(&self, tag: &str) -> Vec<PathBuf> {
        // A process-unique run id keeps concurrently running benchmarks
        // (e.g. parallel tests) from colliding on file names.
        static RUN: ad_support::sync::atomic::AtomicU64 =
            ad_support::sync::atomic::AtomicU64::new(0);
        let run = RUN.fetch_add(1, ad_support::sync::atomic::Ordering::Relaxed);
        (0..self.files)
            .map(|i| {
                self.dir.join(format!(
                    "ad_iobench_{}_{run}_{tag}_{i}.dat",
                    std::process::id()
                ))
            })
            .collect()
    }
}

/// Per-file state for the lock-based variants.
struct LockedFile {
    path: PathBuf,
    /// Shared mutable content state (Listing 3's `x`/`i`): a counter the
    /// operation reads and updates while producing its record.
    counter: u64,
    handle: Option<File>,
}

/// Per-file state for the TM variants: transactional content state plus a
/// deferrable file object.
struct TmFile {
    counter: TVar<u64>,
    file: Defer<TmFileIo>,
}

struct TmFileIo {
    path: PathBuf,
    handle: Mutex<Option<File>>,
}

fn open_append(path: &PathBuf) -> File {
    OpenOptions::new()
        .create(true)
        .read(true)
        .append(true)
        .open(path)
        .expect("open benchmark file")
}

/// The I/O body shared by all variants: (re)open if needed, read the length,
/// append a record derived from content and length, close if not keeping
/// open. This is Listing 6's λ.
fn perform_io(path: &PathBuf, handle: &mut Option<File>, keep_open: bool, content: &str) {
    let mut file = match handle.take() {
        Some(f) => f,
        None => open_append(path),
    };
    let len = if keep_open {
        // Figure 2d: plain append, no length query — smaller critical
        // section.
        0
    } else {
        file.seek(SeekFrom::End(0)).expect("seek")
    };
    let record = format!("{content}@{len}\n");
    file.write_all(record.as_bytes()).expect("append");
    if keep_open {
        *handle = Some(file);
    }
    // else: file drops (closes) here.
}

/// Run one (variant, thread-count) measurement. Creates fresh files, runs
/// the fixed workload, removes the files, and returns the wall time plus a
/// stats note for TM variants.
pub fn run_iobench(cfg: &IoBenchConfig, variant: Variant, threads: usize) -> Measurement {
    run_iobench_traced(cfg, variant, threads, false).0
}

/// Like [`run_iobench`], with `capture_trace` forcing tracing on the TM
/// runtime and draining its event timeline afterwards (the `fig2` bin's
/// `--trace-json` export). The trace is `None` for the lock-based variants.
pub fn run_iobench_traced(
    cfg: &IoBenchConfig,
    variant: Variant,
    threads: usize,
    capture_trace: bool,
) -> (Measurement, Option<ad_stm::Trace>) {
    let tag = format!("{}_{threads}_{}", variant.label(), cfg.files);
    let paths = cfg.paths(&tag);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }

    let (elapsed, note, stats, trace) = match variant {
        Variant::Cgl => (
            run_locked(cfg, &paths, threads, true),
            String::new(),
            None,
            None,
        ),
        Variant::Fgl => (
            run_locked(cfg, &paths, threads, false),
            String::new(),
            None,
            None,
        ),
        Variant::Irrevoc | Variant::Defer => {
            let (elapsed, note, report, trace) =
                run_tm(cfg, &paths, threads, variant, capture_trace);
            (elapsed, note, Some(report), trace)
        }
    };

    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    let m = Measurement {
        series: variant.label().to_string(),
        threads,
        elapsed,
        note,
        stats,
    };
    (m, trace)
}

fn run_locked(cfg: &IoBenchConfig, paths: &[PathBuf], threads: usize, coarse: bool) -> Duration {
    let files: Vec<Mutex<LockedFile>> = paths
        .iter()
        .map(|p| {
            Mutex::new(LockedFile {
                path: p.clone(),
                counter: 0,
                handle: cfg.keep_open.then(|| open_append(p)),
            })
        })
        .collect();
    let global = Mutex::new(());
    let keep_open = cfg.keep_open;
    let nfiles = files.len();

    run_fixed_work(threads, cfg.total_ops, |_, i| {
        let idx = i % nfiles;
        let _g = coarse.then(|| global.lock());
        let mut f = files[idx].lock();
        f.counter += 1;
        let content = format!("op{}:{}", f.counter, idx);
        let LockedFile { path, handle, .. } = &mut *f;
        perform_io(path, handle, keep_open, &content);
    })
}

fn run_tm(
    cfg: &IoBenchConfig,
    paths: &[PathBuf],
    threads: usize,
    variant: Variant,
    capture_trace: bool,
) -> (Duration, String, ad_stm::StatsReport, Option<ad_stm::Trace>) {
    let rt = Runtime::new(if cfg.htm {
        TmConfig::htm()
    } else {
        TmConfig::stm()
    });
    rt.set_tracing(cfg.obs || capture_trace);
    let files: Vec<TmFile> = paths
        .iter()
        .map(|p| TmFile {
            counter: TVar::new(0),
            file: Defer::new(TmFileIo {
                path: p.clone(),
                handle: Mutex::new(cfg.keep_open.then(|| open_append(p))),
            }),
        })
        .collect();
    let keep_open = cfg.keep_open;
    let nfiles = files.len();
    let rt_ref = &rt;
    let files_ref = &files;

    let elapsed = run_fixed_work(threads, cfg.total_ops, move |_, i| {
        let idx = i % nfiles;
        let f = &files_ref[idx];
        match variant {
            Variant::Irrevoc => {
                // `synchronized` version: content production + I/O inside an
                // irrevocable transaction. GCC enters serial mode directly
                // for synchronized blocks with unsafe operations, so we use
                // `synchronized` rather than aborting into it.
                rt_ref.synchronized(|tx| {
                    let c = tx.read(&f.counter)?;
                    tx.write(&f.counter, c + 1)?;
                    let content = format!("op{}:{}", c + 1, idx);
                    // Safe here only because `synchronized` runs serial and
                    // irrevocable: no concurrent transaction can race the
                    // raw access. Outside serial mode this would be §4.1's
                    // unlisted-object data race.
                    // ad-lint: allow(direct-access-in-atomic)
                    let io = f.file.peek_unsynchronized();
                    perform_io(&io.path, &mut io.handle.lock(), keep_open, &content);
                    Ok(())
                });
            }
            Variant::Defer => {
                // `atomic_defer` version: content produced transactionally,
                // I/O deferred on the file's deferrable object.
                rt_ref.atomically(|tx| {
                    // Read (subscribing to the file's TxLock) and register
                    // the deferral before the first write — the §9
                    // defer-before-first-write ordering.
                    let c = f.file.with(tx, |_, tx| tx.read(&f.counter))? + 1;
                    let content = format!("op{c}:{idx}");
                    let io = f.file.clone();
                    atomic_defer(tx, &[&f.file], move || {
                        let guard = io.locked();
                        perform_io(&guard.path, &mut guard.handle.lock(), keep_open, &content);
                    })?;
                    f.file.with(tx, |_, tx| tx.write(&f.counter, c))
                });
            }
            _ => unreachable!(),
        }
    });
    let trace = capture_trace.then(|| rt.take_trace());
    (
        elapsed,
        format!("{}", rt.stats()),
        rt.snapshot_stats(),
        trace,
    )
}

/// Count the records written across all benchmark files (verification
/// helper — the benchmark itself removes its files, so tests use the
/// lower-level pieces).
pub fn count_records(paths: &[PathBuf]) -> usize {
    paths
        .iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .map(|s| s.lines().count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(files: usize) -> IoBenchConfig {
        IoBenchConfig::new(files, 200)
    }

    #[test]
    fn all_variants_complete_the_workload() {
        for variant in Variant::all() {
            let m = run_iobench(&quick_cfg(2), variant, 2);
            assert_eq!(m.series, variant.label());
            assert!(m.elapsed > Duration::ZERO, "{variant:?} did no work");
        }
    }

    #[test]
    fn keep_open_mode_works_for_all_variants() {
        let cfg = quick_cfg(2).with_keep_open(true);
        for variant in Variant::all() {
            let m = run_iobench(&cfg, variant, 2);
            assert!(m.elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn htm_mode_runs_tm_variants() {
        let cfg = quick_cfg(2).with_htm(true);
        for variant in [Variant::Irrevoc, Variant::Defer] {
            let m = run_iobench(&cfg, variant, 2);
            assert!(m.elapsed > Duration::ZERO);
            assert!(!m.note.is_empty(), "TM variants should report stats");
        }
    }

    #[test]
    fn defer_variant_writes_every_record() {
        // Run the defer path manually (without file cleanup) and verify
        // record counts.
        let cfg = IoBenchConfig::new(2, 100);
        let tag = "verify";
        let paths = cfg.paths(tag);
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let (elapsed, _, _, _) = run_tm(&cfg, &paths, 3, Variant::Defer, false);
        assert!(elapsed > Duration::ZERO);
        assert_eq!(count_records(&paths), 100);
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn irrevoc_variant_serializes() {
        let cfg = IoBenchConfig::new(1, 50);
        let tag = "ser";
        let paths = cfg.paths(tag);
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let (_, note, report, _) = run_tm(&cfg, &paths, 2, Variant::Irrevoc, false);
        // Every op serialized: the note must show 50 serial commits.
        assert!(note.contains("serial_commits=50"), "stats: {note}");
        assert_eq!(report.counters.serial_commits, 50);
        assert_eq!(count_records(&paths), 50);
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }
}
