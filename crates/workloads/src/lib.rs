//! # ad-workloads — microbenchmark workloads and measurement harness
//!
//! The transactional-I/O microbenchmark of the atomic-deferral paper
//! (§6.1, Listing 6; reproduced as Figure 2 by `ad-bench`), plus the
//! thread-sweep measurement utilities shared by all figure binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod iobench;
pub mod logbench;
pub mod poolbench;

pub use harness::{print_csv, print_time_table, run_fixed_work, stats_json, Measurement};
pub use iobench::{run_iobench, run_iobench_traced, IoBenchConfig, Variant};
pub use logbench::{run_logbench, LogBenchConfig, LogVariant};
pub use poolbench::{run_poolbench, PoolBenchConfig, PoolVariant};
