//! The §5.1 use case, quantified: diagnostic logging from transactional
//! critical sections (memcached / Atomic Quake).
//!
//! Each operation updates a few shared variables and logs a line derived
//! from them. Strategies:
//!
//! * **skip** — delete the logging, as transactional ports of memcached
//!   actually did to avoid serialization (the paper's observation);
//! * **irrevoc** — log inline from an irrevocable transaction;
//! * **defer** — `DeferLogger::log` (ordered, atomic with the transaction);
//! * **defer-unordered** — the `nil`-objects variant for timestamped logs;
//! * **mutex** — the non-transactional lock-based yardstick.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

use ad_defer::io::DeferLogger;
use ad_stm::{Runtime, TVar, TmConfig};
use ad_support::sync::Mutex;

use crate::harness::{run_fixed_work, Measurement};

/// Logging strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogVariant {
    /// No logging at all (what transactional ports resort to).
    Skip,
    /// Inline logging from irrevocable transactions.
    Irrevoc,
    /// `atomic_defer`red, ordered logging.
    Defer,
    /// Deferred logging with no ordering (nil objects).
    DeferUnordered,
    /// Lock-based baseline.
    Mutex,
}

impl LogVariant {
    /// Series label.
    pub fn label(self) -> &'static str {
        match self {
            LogVariant::Skip => "skip",
            LogVariant::Irrevoc => "irrevoc",
            LogVariant::Defer => "defer",
            LogVariant::DeferUnordered => "defer-unordered",
            LogVariant::Mutex => "mutex",
        }
    }

    /// All variants in table order.
    pub fn all() -> [LogVariant; 5] {
        [
            LogVariant::Mutex,
            LogVariant::Skip,
            LogVariant::Irrevoc,
            LogVariant::Defer,
            LogVariant::DeferUnordered,
        ]
    }
}

/// Configuration of one logging-benchmark run.
#[derive(Debug, Clone)]
pub struct LogBenchConfig {
    /// Total operations across all threads.
    pub total_ops: usize,
    /// Number of shared counters the transactional part touches.
    pub shared_vars: usize,
    /// Directory for the log file.
    pub dir: PathBuf,
    /// Enable observability (tracing + full histograms) on the TM runtime.
    pub obs: bool,
}

impl LogBenchConfig {
    /// Default configuration.
    pub fn new(total_ops: usize) -> Self {
        LogBenchConfig {
            total_ops,
            shared_vars: 8,
            dir: std::env::temp_dir(),
            obs: false,
        }
    }

    /// Enable observability on the TM variants.
    pub fn with_obs(mut self, on: bool) -> Self {
        self.obs = on;
        self
    }

    fn path(&self, tag: &str) -> PathBuf {
        // A process-unique run id keeps concurrently running benchmarks
        // (e.g. parallel tests) from colliding on file names.
        static RUN: ad_support::sync::atomic::AtomicU64 =
            ad_support::sync::atomic::AtomicU64::new(0);
        let run = RUN.fetch_add(1, ad_support::sync::atomic::Ordering::Relaxed);
        self.dir.join(format!(
            "ad_logbench_{}_{run}_{tag}.log",
            std::process::id()
        ))
    }
}

/// Run one (variant, threads) cell. Returns the measurement; panics if a
/// logging variant lost lines.
pub fn run_logbench(cfg: &LogBenchConfig, variant: LogVariant, threads: usize) -> Measurement {
    let path = cfg.path(&format!("{}_{threads}", variant.label()));
    let _ = std::fs::remove_file(&path);
    let file = File::create(&path).expect("create log file");

    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(cfg.obs);
    let vars: Vec<TVar<u64>> = (0..cfg.shared_vars).map(|_| TVar::new(0)).collect();
    let nvars = vars.len();

    let (elapsed, note) = match variant {
        LogVariant::Mutex => {
            struct State {
                counters: Vec<u64>,
                file: File,
            }
            let st = Mutex::new(State {
                counters: vec![0; nvars],
                file,
            });
            let e = run_fixed_work(threads, cfg.total_ops, |t, i| {
                let slot = i % nvars;
                let mut s = st.lock();
                s.counters[slot] += 1;
                let line = format!("t{t} slot {slot} -> {}", s.counters[slot]);
                writeln!(s.file, "{line}").expect("log write");
            });
            (e, String::new())
        }
        LogVariant::Skip => {
            let e = run_fixed_work(threads, cfg.total_ops, |_, i| {
                let slot = i % nvars;
                rt.atomically(|tx| tx.modify(&vars[slot], |v| v + 1));
            });
            (e, format!("{}", rt.stats()))
        }
        LogVariant::Irrevoc => {
            let file = Mutex::new(file);
            let e = run_fixed_work(threads, cfg.total_ops, |t, i| {
                let slot = i % nvars;
                rt.synchronized(|tx| {
                    let v = tx.read(&vars[slot])?;
                    tx.write(&vars[slot], v + 1)?;
                    writeln!(file.lock(), "t{t} slot {slot} -> {}", v + 1).expect("log write");
                    Ok(())
                });
            });
            (e, format!("{}", rt.stats()))
        }
        LogVariant::Defer | LogVariant::DeferUnordered => {
            let logger = DeferLogger::new(Box::new(file));
            let ordered = variant == LogVariant::Defer;
            let e = run_fixed_work(threads, cfg.total_ops, |t, i| {
                let slot = i % nvars;
                rt.atomically(|tx| {
                    let v = tx.read(&vars[slot])?;
                    tx.write(&vars[slot], v + 1)?;
                    let line = format!("t{t} slot {slot} -> {}", v + 1);
                    if ordered {
                        logger.log(tx, line)
                    } else {
                        logger.log_unordered(tx, line)
                    }
                });
            });
            (e, format!("{}", rt.stats()))
        }
    };

    // Verify: every logging variant must have written exactly total_ops
    // lines; the counters must add up for every variant.
    if variant != LogVariant::Skip {
        let lines = std::fs::read_to_string(&path)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        assert_eq!(lines, cfg.total_ops, "{variant:?} lost log lines");
    }
    if variant != LogVariant::Mutex {
        let sum: u64 = vars.iter().map(|v| v.load()).sum();
        assert_eq!(sum, cfg.total_ops as u64, "{variant:?} lost updates");
    }
    let _ = std::fs::remove_file(&path);

    let stats = (variant != LogVariant::Mutex).then(|| rt.snapshot_stats());
    Measurement {
        series: variant.label().to_string(),
        threads,
        elapsed,
        note,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_complete_and_verify() {
        let cfg = LogBenchConfig::new(300);
        for v in LogVariant::all() {
            let m = run_logbench(&cfg, v, 2);
            assert_eq!(m.series, v.label());
        }
    }

    #[test]
    fn irrevocable_variant_serializes_defer_does_not() {
        let cfg = LogBenchConfig::new(200);
        let irre = run_logbench(&cfg, LogVariant::Irrevoc, 2);
        assert!(
            irre.note.contains("serial_commits=200"),
            "stats: {}",
            irre.note
        );
        let defr = run_logbench(&cfg, LogVariant::Defer, 2);
        assert!(
            defr.note.contains("serial_commits=0"),
            "stats: {}",
            defr.note
        );
        assert!(
            defr.note.contains("deferred_ops=200"),
            "stats: {}",
            defr.note
        );
    }

    #[test]
    fn obs_mode_fills_histograms() {
        let cfg = LogBenchConfig::new(200).with_obs(true);
        let m = run_logbench(&cfg, LogVariant::Defer, 2);
        let r = m.stats.expect("TM variant collects stats");
        assert_eq!(r.counters.deferred_ops, 200);
        assert_eq!(r.commit_latency_ns.count(), r.counters.total_commits());
        assert_eq!(r.defer_queue_to_done_ns.count(), 200);
    }
}
