//! The §5.3 use case, quantified: a bounded file-descriptor pool under
//! concurrent appends (MySQL InnoDB's file-space management).
//!
//! All three strategies share the pattern InnoDB uses — reserve an offset
//! in a critical section, perform the (positioned) write outside it, keep a
//! pending-I/O count so a descriptor with in-flight writes is never closed:
//!
//! * **mutex** — one pool lock; open/close system calls happen while
//!   holding it (the lock-based original);
//! * **irrevoc** — transactional metadata; the open/close repair path runs
//!   as an irrevocable transaction, serializing *every* transaction in the
//!   program while system calls are in flight;
//! * **defer** — [`ad_defer::io::FdPool`]: metadata transactions subscribe
//!   to the pool, open/close are atomically deferred operations, and only
//!   transactions that touch the pool stall while they run.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

use ad_defer::io::FdPool;
use ad_stm::{Runtime, StmResult, TVar, TmConfig, Tx};
use ad_support::sync::{Condvar, Mutex};

use crate::harness::{run_fixed_work, Measurement};

/// Pool strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolVariant {
    /// Lock-based pool, open/close under the lock.
    Mutex,
    /// Transactional pool with irrevocable open/close.
    Irrevoc,
    /// Transactional pool with atomically deferred open/close.
    Defer,
}

impl PoolVariant {
    /// Series label.
    pub fn label(self) -> &'static str {
        match self {
            PoolVariant::Mutex => "mutex",
            PoolVariant::Irrevoc => "irrevoc",
            PoolVariant::Defer => "defer",
        }
    }

    /// All variants in table order.
    pub fn all() -> [PoolVariant; 3] {
        [PoolVariant::Mutex, PoolVariant::Irrevoc, PoolVariant::Defer]
    }
}

/// Configuration of one pool-benchmark run.
#[derive(Debug, Clone)]
pub struct PoolBenchConfig {
    /// Logical files in the pool.
    pub files: usize,
    /// Maximum simultaneously open descriptors.
    pub max_open: usize,
    /// Total appends across all threads.
    pub total_ops: usize,
    /// Append payload size.
    pub payload: usize,
    /// Directory for the files.
    pub dir: PathBuf,
}

impl PoolBenchConfig {
    /// Default: 8 files, 2 open, 64-byte records.
    pub fn new(total_ops: usize) -> Self {
        PoolBenchConfig {
            files: 8,
            max_open: 2,
            total_ops,
            payload: 64,
            dir: std::env::temp_dir(),
        }
    }

    fn paths(&self, tag: &str) -> Vec<PathBuf> {
        // A process-unique run id keeps concurrently running benchmarks
        // (e.g. parallel tests) from colliding on file names.
        static RUN: ad_support::sync::atomic::AtomicU64 =
            ad_support::sync::atomic::AtomicU64::new(0);
        let run = RUN.fetch_add(1, ad_support::sync::atomic::Ordering::Relaxed);
        (0..self.files)
            .map(|i| {
                self.dir.join(format!(
                    "ad_poolbench_{}_{run}_{tag}_{i}.dat",
                    std::process::id()
                ))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Lock-based pool: open/close while holding the pool lock.
// ---------------------------------------------------------------------

struct MutexSlot {
    path: PathBuf,
    size: u64,
    pending: u32,
    handle: Option<File>,
}

struct MutexPoolState {
    slots: Vec<MutexSlot>,
    n_open: usize,
}

struct MutexPool {
    state: Mutex<MutexPoolState>,
    drained: Condvar,
    max_open: usize,
}

impl MutexPool {
    fn new(paths: Vec<PathBuf>, max_open: usize) -> Self {
        MutexPool {
            state: Mutex::new(MutexPoolState {
                slots: paths
                    .into_iter()
                    .map(|path| MutexSlot {
                        path,
                        size: 0,
                        pending: 0,
                        handle: None,
                    })
                    .collect(),
                n_open: 0,
            }),
            drained: Condvar::new(),
            max_open,
        }
    }

    fn append(&self, idx: usize, data: &[u8]) {
        let offset = {
            let mut st = self.state.lock();
            loop {
                if st.slots[idx].handle.is_some() {
                    break;
                }
                // Need to open; maybe close a victim first — the system
                // calls happen under the pool lock.
                if st.n_open >= self.max_open {
                    let victim = st
                        .slots
                        .iter()
                        .position(|s| s.handle.is_some() && s.pending == 0);
                    match victim {
                        Some(v) => {
                            st.slots[v].handle = None; // close(2)
                            st.n_open -= 1;
                        }
                        None => {
                            // All open files busy: wait for a writer.
                            self.drained.wait(&mut st);
                            continue;
                        }
                    }
                }
                let slot = &mut st.slots[idx];
                slot.handle = Some(
                    OpenOptions::new()
                        .create(true)
                        .read(true)
                        .write(true)
                        .truncate(false)
                        .open(&slot.path)
                        .expect("open"),
                );
                st.n_open += 1;
            }
            let slot = &mut st.slots[idx];
            let off = slot.size;
            slot.size += data.len() as u64;
            slot.pending += 1;
            off
        };

        // Positioned write outside the lock (InnoDB async-I/O pattern).
        {
            let mut st = self.state.lock();
            let MutexSlot { handle, .. } = &mut st.slots[idx];
            let f = handle.as_mut().expect("closed with pending I/O");
            f.seek(SeekFrom::Start(offset)).expect("seek");
            f.write_all(data).expect("write");
        }

        let mut st = self.state.lock();
        st.slots[idx].pending -= 1;
        drop(st);
        self.drained.notify_all();
    }
}

// ---------------------------------------------------------------------
// Transactional pool with IRREVOCABLE open/close (the pre-deferral port).
// ---------------------------------------------------------------------

struct IrrevocSlot {
    path: PathBuf,
    open: TVar<bool>,
    size: TVar<u64>,
    pending: TVar<u32>,
    handle: Mutex<Option<File>>,
}

struct IrrevocPool {
    slots: Vec<IrrevocSlot>,
    n_open: TVar<usize>,
    max_open: usize,
}

enum IrrevocPlan {
    Reserved(u64),
    NeedRepair,
}

impl IrrevocPool {
    fn new(paths: Vec<PathBuf>, max_open: usize) -> Self {
        IrrevocPool {
            slots: paths
                .into_iter()
                .map(|path| IrrevocSlot {
                    path,
                    open: TVar::new(false),
                    size: TVar::new(0),
                    pending: TVar::new(0),
                    handle: Mutex::new(None),
                })
                .collect(),
            n_open: TVar::new(0),
            max_open,
        }
    }

    fn reserve(&self, tx: &mut Tx, idx: usize, len: u64) -> StmResult<IrrevocPlan> {
        let slot = &self.slots[idx];
        if !tx.read(&slot.open)? {
            return Ok(IrrevocPlan::NeedRepair);
        }
        let off = tx.read(&slot.size)?;
        tx.write(&slot.size, off + len)?;
        let p = tx.read(&slot.pending)?;
        tx.write(&slot.pending, p + 1)?;
        Ok(IrrevocPlan::Reserved(off))
    }

    /// The repair path: an irrevocable transaction performing the open (and
    /// victim close) inline — while it runs, no other transaction in the
    /// runtime can execute. This is exactly the cost §5.3 describes.
    fn repair(&self, rt: &Runtime, idx: usize) {
        rt.synchronized(|tx| {
            if tx.read(&self.slots[idx].open)? {
                return Ok(()); // someone else repaired it
            }
            // Blocking check first (before any serial writes!): find a
            // victim if at capacity.
            let n_open = tx.read(&self.n_open)?;
            let victim = if n_open >= self.max_open {
                let mut found = None;
                for (i, s) in self.slots.iter().enumerate() {
                    if i != idx && tx.read(&s.open)? && tx.read(&s.pending)? == 0 {
                        found = Some(i);
                        break;
                    }
                }
                match found {
                    Some(v) => Some(v),
                    None => return tx.retry(), // wait for pending I/O to drain
                }
            } else {
                None
            };

            if let Some(v) = victim {
                *self.slots[v].handle.lock() = None; // close(2)
                tx.write(&self.slots[v].open, false)?;
            } else {
                tx.write(&self.n_open, n_open + 1)?;
            }
            let slot = &self.slots[idx];
            *slot.handle.lock() = Some(
                OpenOptions::new()
                    .create(true)
                    .read(true)
                    .write(true)
                    .truncate(false)
                    .open(&slot.path)
                    .expect("open"),
            );
            tx.write(&slot.open, true)?;
            Ok(())
        });
    }

    fn append(&self, rt: &Runtime, idx: usize, data: &[u8]) {
        loop {
            let plan = rt.atomically(|tx| self.reserve(tx, idx, data.len() as u64));
            match plan {
                IrrevocPlan::Reserved(offset) => {
                    {
                        let mut guard = self.slots[idx].handle.lock();
                        let f = guard.as_mut().expect("closed with pending I/O");
                        f.seek(SeekFrom::Start(offset)).expect("seek");
                        f.write_all(data).expect("write");
                    }
                    rt.atomically(|tx| {
                        let p = tx.read(&self.slots[idx].pending)?;
                        tx.write(&self.slots[idx].pending, p - 1)
                    });
                    return;
                }
                IrrevocPlan::NeedRepair => self.repair(rt, idx),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The benchmark driver.
// ---------------------------------------------------------------------

/// Run one (variant, threads) cell; verifies file sizes afterwards.
pub fn run_poolbench(cfg: &PoolBenchConfig, variant: PoolVariant, threads: usize) -> Measurement {
    let paths = cfg.paths(&format!("{}_{threads}", variant.label()));
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    let payload = vec![b'x'; cfg.payload];
    let nfiles = cfg.files;

    let (elapsed, note, stats) = match variant {
        PoolVariant::Mutex => {
            let pool = MutexPool::new(paths.clone(), cfg.max_open);
            let e = run_fixed_work(threads, cfg.total_ops, |_, i| {
                pool.append(i % nfiles, &payload);
            });
            (e, String::new(), None)
        }
        PoolVariant::Irrevoc => {
            let rt = Runtime::new(TmConfig::stm());
            let pool = IrrevocPool::new(paths.clone(), cfg.max_open);
            let e = run_fixed_work(threads, cfg.total_ops, |_, i| {
                pool.append(&rt, i % nfiles, &payload);
            });
            (e, format!("{}", rt.stats()), Some(rt.snapshot_stats()))
        }
        PoolVariant::Defer => {
            let rt = Runtime::new(TmConfig::stm());
            let pool = FdPool::new(paths.clone(), cfg.max_open);
            let e = run_fixed_work(threads, cfg.total_ops, |_, i| {
                pool.append(&rt, i % nfiles, &payload).expect("append");
            });
            (e, format!("{}", rt.stats()), Some(rt.snapshot_stats()))
        }
    };

    // Verify: total bytes across files == ops * payload.
    let total: u64 = paths
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    assert_eq!(
        total,
        (cfg.total_ops * cfg.payload) as u64,
        "{variant:?} lost appends"
    );
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }

    Measurement {
        series: variant.label().to_string(),
        threads,
        elapsed,
        note,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_complete_and_verify() {
        let cfg = PoolBenchConfig::new(200);
        for v in PoolVariant::all() {
            let m = run_poolbench(&cfg, v, 2);
            assert_eq!(m.series, v.label());
        }
    }

    #[test]
    fn irrevoc_repairs_serialize_defer_does_not() {
        let mut cfg = PoolBenchConfig::new(200);
        cfg.files = 6;
        cfg.max_open = 2; // lots of churn
        let irre = run_poolbench(&cfg, PoolVariant::Irrevoc, 2);
        assert!(
            !irre.note.contains("serializations=0"),
            "irrevoc pool should serialize on open/close: {}",
            irre.note
        );
        let defr = run_poolbench(&cfg, PoolVariant::Defer, 2);
        assert!(
            defr.note.contains("serializations=0"),
            "defer pool should never serialize: {}",
            defr.note
        );
    }
}
