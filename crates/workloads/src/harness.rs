//! Thread-sweep measurement utilities shared by the figure-reproduction
//! binaries and benches: run a fixed total amount of work across N threads
//! behind a start barrier, time it, and print paper-style tables.

use std::sync::Barrier;

use ad_support::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ad_stm::StatsReport;

/// Result of one (variant, thread-count) cell of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Label of the series (e.g. "CGL", "defer").
    pub series: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock time for the whole fixed workload.
    pub elapsed: Duration,
    /// Optional free-form diagnostics (stats counters etc.).
    pub note: String,
    /// Full observability report for the cell's runtime, when the caller
    /// collected one (`--stats-json` in the bench bins). `None` for
    /// variants that don't run on the TM runtime (e.g. CGL baselines).
    pub stats: Option<StatsReport>,
}

impl Measurement {
    /// Seconds as f64 (for tables).
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Run `total_ops` operations split across `threads` workers, all released
/// together by a barrier. `op` receives the thread index and the global
/// operation index it claimed. Returns the wall-clock duration measured from
/// barrier release to last-thread completion.
pub fn run_fixed_work<F>(threads: usize, total_ops: usize, op: F) -> Duration
where
    F: Fn(usize, usize) + Sync,
{
    assert!(threads > 0);
    let barrier = Barrier::new(threads + 1);
    let next_op = AtomicUsize::new(0);
    let op = &op;
    let next = &next_op;
    let bar = &barrier;

    let mut start: Option<Instant> = None;
    let start_ref = &mut start;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                bar.wait();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total_ops {
                        break;
                    }
                    op(t, i);
                }
            });
        }
        bar.wait();
        *start_ref = Some(Instant::now());
        // The scope joins every worker before returning, so measuring
        // `elapsed` after the scope gives barrier-release → last-finisher.
    });
    start.expect("barrier released").elapsed()
}

/// Print a Markdown-ish table: first column is the thread count, one column
/// per series, values in seconds.
pub fn print_time_table(title: &str, thread_counts: &[usize], results: &[Measurement]) {
    println!("\n## {title}\n");
    let mut series: Vec<String> = Vec::new();
    for m in results {
        if !series.contains(&m.series) {
            series.push(m.series.clone());
        }
    }
    print!("| threads |");
    for s in &series {
        print!(" {s} |");
    }
    println!();
    print!("|---|");
    for _ in &series {
        print!("---|");
    }
    println!();
    for &t in thread_counts {
        print!("| {t} |");
        for s in &series {
            match results.iter().find(|m| m.threads == t && &m.series == s) {
                Some(m) => print!(" {:.3}s |", m.secs()),
                None => print!(" - |"),
            }
        }
        println!();
    }
    println!();
    for m in results {
        if !m.note.is_empty() {
            println!("  [{} @ {}t] {}", m.series, m.threads, m.note);
        }
    }
}

/// Emit machine-readable CSV alongside the table (series,threads,seconds).
pub fn print_csv(results: &[Measurement]) {
    println!("series,threads,seconds");
    for m in results {
        println!("{},{},{:.6}", m.series, m.threads, m.secs());
    }
}

/// Serialize a result set as a JSON array of cells — the payload behind the
/// bench bins' `--stats-json <path>` flag. Cells without a collected
/// [`StatsReport`] get `"stats": null`, so the array always has one element
/// per measurement.
pub fn stats_json(results: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"series\":\"{}\",\"threads\":{},\"seconds\":{:.6},\"stats\":{}}}",
            m.series.replace('"', "'"),
            m.threads,
            m.secs(),
            m.stats
                .as_ref()
                .map_or_else(|| "null".to_string(), |s| s.to_json()),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fixed_work_executes_every_op_exactly_once() {
        let hits = AtomicU64::new(0);
        let seen = (0..100).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        run_fixed_work(4, 100, |_, i| {
            hits.fetch_add(1, Ordering::Relaxed);
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn fixed_work_single_thread() {
        let hits = AtomicU64::new(0);
        let d = run_fixed_work(1, 10, |t, _| {
            assert_eq!(t, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn measurement_secs() {
        let m = Measurement {
            series: "x".into(),
            threads: 1,
            elapsed: Duration::from_millis(1500),
            note: String::new(),
            stats: None,
        };
        assert!((m.secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn stats_json_emits_one_cell_per_measurement() {
        let results = vec![
            Measurement {
                series: "tm".into(),
                threads: 2,
                elapsed: Duration::from_millis(10),
                note: String::new(),
                stats: Some(StatsReport::default()),
            },
            Measurement {
                series: "cgl".into(),
                threads: 2,
                elapsed: Duration::from_millis(20),
                note: String::new(),
                stats: None,
            },
        ];
        let j = stats_json(&results);
        assert!(j.contains("\"series\":\"tm\""));
        assert!(j.contains("\"stats\":null"));
        assert!(j.contains("\"quiesce_wait_ns\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn tables_print_without_panicking() {
        let results = vec![
            Measurement {
                series: "A".into(),
                threads: 1,
                elapsed: Duration::from_millis(10),
                note: "n".into(),
                stats: None,
            },
            Measurement {
                series: "B".into(),
                threads: 2,
                elapsed: Duration::from_millis(20),
                note: String::new(),
                stats: None,
            },
        ];
        print_time_table("t", &[1, 2], &results);
        print_csv(&results);
    }
}
