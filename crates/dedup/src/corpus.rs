//! Synthetic input corpus for the dedup pipeline.
//!
//! PARSEC ships a ~672 MB archive of real data that we cannot include
//! (DESIGN.md §5); what the benchmark actually needs from its input is (a)
//! a controllable *duplication ratio* — so the Deduplicate stage's shared
//! hash table sees both hits and misses — and (b) *compressible* content —
//! so the Compress stage does real, long-running pure work. The generator
//! produces a stream of blocks: each block is either a repeat of an earlier
//! block (with probability `dup_ratio`) or fresh pseudo-text built from a
//! word dictionary (compressible, like PARSEC's mixed media).

use ad_support::prng::Rng;

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusParams {
    /// Total size in bytes (the generator may overshoot by < one block).
    pub size: usize,
    /// Probability that a block repeats an earlier block.
    pub dup_ratio: f64,
    /// Mean block length in bytes (actual lengths vary ±50%).
    pub block_len: usize,
    /// RNG seed — corpora are fully reproducible.
    pub seed: u64,
}

impl CorpusParams {
    /// Paper-shaped defaults scaled down: 8 MiB, half the blocks duplicated.
    pub fn new(size: usize) -> Self {
        CorpusParams {
            size,
            dup_ratio: 0.5,
            block_len: 16 * 1024,
            seed: 0xDED0_1234,
        }
    }

    /// Builder-style duplication-ratio override.
    pub fn with_dup_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.dup_ratio = r;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Load a corpus from a file instead of generating one — for running the
/// pipeline on real data (the paper used PARSEC's archive of mixed media).
pub fn from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

const WORDS: &[&str] = &[
    "transaction",
    "memory",
    "atomic",
    "deferral",
    "lock",
    "subscribe",
    "commit",
    "abort",
    "quiesce",
    "serial",
    "pipeline",
    "chunk",
    "fingerprint",
    "compress",
    "output",
    "thread",
    "conflict",
    "retry",
    "irrevocable",
    "buffer",
    "stream",
    "record",
    "archive",
    "worker",
];

/// Generate a corpus. Deterministic for a given `params`.
pub fn generate(params: &CorpusParams) -> Vec<u8> {
    assert!(params.block_len >= 16, "blocks must be at least 16 bytes");
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut out = Vec::with_capacity(params.size + params.block_len * 2);
    let mut blocks: Vec<(usize, usize)> = Vec::new(); // (offset, len) of prior blocks

    while out.len() < params.size {
        let repeat = !blocks.is_empty() && rng.random_bool(params.dup_ratio);
        if repeat {
            let (off, len) = blocks[rng.random_range(0..blocks.len())];
            out.extend_from_within(off..off + len);
        } else {
            let target = rng.random_range(params.block_len / 2..params.block_len * 3 / 2);
            let start = out.len();
            while out.len() - start < target {
                let w = WORDS[rng.random_range(0..WORDS.len())];
                out.extend_from_slice(w.as_bytes());
                out.push(if rng.random_bool(0.1) { b'\n' } else { b' ' });
                if rng.random_bool(0.05) {
                    // Sprinkle numbers so blocks are distinct.
                    out.extend_from_slice(format!("{:08x}", rng.next_u32()).as_bytes());
                }
            }
            blocks.push((start, out.len() - start));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = CorpusParams::new(64 * 1024);
        assert_eq!(generate(&p), generate(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusParams::new(64 * 1024).with_seed(1));
        let b = generate(&CorpusParams::new(64 * 1024).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn size_is_respected() {
        let p = CorpusParams::new(100_000);
        let c = generate(&p);
        assert!(c.len() >= 100_000);
        assert!(c.len() < 100_000 + p.block_len * 2);
    }

    #[test]
    fn corpus_is_compressible() {
        let c = generate(&CorpusParams::new(256 * 1024));
        let z = crate::lzss::compress(&c);
        assert!(
            z.len() * 2 < c.len(),
            "corpus should compress at least 2x: {} -> {}",
            c.len(),
            z.len()
        );
    }

    #[test]
    fn high_dup_ratio_duplicates_chunks() {
        let c = generate(&CorpusParams::new(512 * 1024).with_dup_ratio(0.8));
        let chunks = crate::rabin::chunk(&c, crate::rabin::ChunkParams::tiny());
        let distinct: std::collections::HashSet<&[u8]> = chunks.iter().copied().collect();
        assert!(
            distinct.len() * 2 < chunks.len(),
            "expected dedup opportunities: {} distinct of {}",
            distinct.len(),
            chunks.len()
        );
    }

    #[test]
    fn zero_dup_ratio_yields_mostly_unique_chunks() {
        let c = generate(&CorpusParams::new(256 * 1024).with_dup_ratio(0.0));
        let chunks = crate::rabin::chunk(&c, crate::rabin::ChunkParams::tiny());
        let distinct: std::collections::HashSet<&[u8]> = chunks.iter().copied().collect();
        assert!(distinct.len() * 10 > chunks.len() * 9);
    }
}
