//! Synchronization backends for the dedup pipeline.
//!
//! The pipeline's *shared* state — the chunk-fingerprint table, the reorder
//! buffer, and the output stream — is what the paper's Figure 3 experiment
//! varies synchronization strategies over:
//!
//! * [`LockBackend`](locks::LockBackend) — PARSEC's original pthread design:
//!   sharded table locks, a reorder lock, output performed while holding it.
//! * [`TmBackend`](tm::TmBackend) — the transactionalized design of Wang et
//!   al., in four flavours selected by [`TmFlavor`](tm::TmFlavor): the baseline (output in
//!   irrevocable transactions, compression inside transactions), `+DeferIO`
//!   (output atomically deferred), and `+DeferAll` (output *and* compression
//!   deferred), each runnable on the STM or the simulated-HTM runtime.

pub mod locks;
pub mod tm;

use std::fs::File;
use std::io::Write;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use crate::format::Record;

/// A dedup synchronization backend: consumes chunks (concurrently), emits
/// the archive.
pub trait Backend: Send + Sync {
    /// Process the chunk `corpus[range]` with global sequence number `seq`.
    /// Called concurrently from worker threads; every seq in `0..total` is
    /// processed exactly once.
    fn process_chunk(&self, seq: u64, corpus: &Arc<Vec<u8>>, range: Range<usize>);

    /// Drain the reorder buffer after all chunks have been processed;
    /// returns when all `total` records have been written.
    fn finalize(&self, total: u64);

    /// Series label for tables (e.g. "Pthread", "STM+DeferAll").
    fn label(&self) -> String;

    /// Archive statistics after `finalize`.
    fn output_stats(&self) -> OutputStats;

    /// Read the produced archive back (for verification).
    fn archive_bytes(&self) -> std::io::Result<Vec<u8>>;

    /// Free-form diagnostics (TM stats counters), if any.
    fn diagnostics(&self) -> String {
        String::new()
    }

    /// Full observability report of the backend's TM runtime, if it has
    /// one. `None` for lock-based backends; histograms beyond quiescence
    /// only fill when the runtime's tracing was enabled
    /// ([`BackendConfig::obs`]).
    fn stats_report(&self) -> Option<ad_stm::StatsReport> {
        None
    }

    /// Drain the backend's TM runtime event timeline, if it has one.
    /// `None` for lock-based backends; empty unless the runtime's tracing
    /// was enabled ([`BackendConfig::obs`]). Feeds the bench bins'
    /// `--trace-json` export.
    fn take_trace(&self) -> Option<ad_stm::Trace> {
        None
    }

    /// Whether the trace-event variable id `var` (a `TVar::id`) belongs to
    /// this backend's chunk-fingerprint table. Lets callers split a
    /// `Trace::contention_report`'s hot entries into table conflicts
    /// versus reorder/output conflicts. Lock backends have no
    /// transactional variables, so the default is `false`.
    fn is_table_var(&self, _var: u64) -> bool {
        false
    }
}

/// Counters accumulated by the output stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputStats {
    /// Unique-chunk records written.
    pub unique_records: u64,
    /// Reference records written.
    pub reference_records: u64,
    /// Total archive bytes.
    pub bytes_written: u64,
}

/// Where the archive goes.
pub enum SinkTarget {
    /// In-memory buffer (tests, quick benches).
    Memory,
    /// A file on disk (real output I/O, as in the paper).
    File(PathBuf),
}

/// The output stream plus its statistics. Thread-safety is provided by the
/// backend wrapping it (a lock or a deferrable object).
pub struct OutputSink {
    kind: SinkKind,
    stats: OutputStats,
}

enum SinkKind {
    Memory(Vec<u8>),
    File { file: File, path: PathBuf },
}

impl OutputSink {
    /// Open the sink.
    pub fn new(target: SinkTarget) -> std::io::Result<Self> {
        let kind = match target {
            SinkTarget::Memory => SinkKind::Memory(Vec::new()),
            SinkTarget::File(path) => SinkKind::File {
                file: File::create(&path)?,
                path,
            },
        };
        Ok(OutputSink {
            kind,
            stats: OutputStats::default(),
        })
    }

    /// Append `records` to the archive in order.
    pub fn write_records(&mut self, records: &[Record]) {
        let mut buf = Vec::with_capacity(records.iter().map(Record::encoded_len).sum());
        for r in records {
            r.encode_into(&mut buf);
            match r {
                Record::Unique { .. } => self.stats.unique_records += 1,
                Record::Reference { .. } => self.stats.reference_records += 1,
            }
        }
        self.stats.bytes_written += buf.len() as u64;
        match &mut self.kind {
            SinkKind::Memory(v) => v.extend_from_slice(&buf),
            SinkKind::File { file, .. } => {
                file.write_all(&buf).expect("archive write failed");
            }
        }
    }

    /// Flush file sinks to the OS.
    pub fn flush(&mut self) {
        if let SinkKind::File { file, .. } = &mut self.kind {
            let _ = file.flush();
        }
    }

    /// Stats so far.
    pub fn stats(&self) -> OutputStats {
        self.stats
    }

    /// Archive contents (reads the file back for file sinks).
    pub fn contents(&self) -> std::io::Result<Vec<u8>> {
        match &self.kind {
            SinkKind::Memory(v) => Ok(v.clone()),
            SinkKind::File { path, .. } => std::fs::read(path),
        }
    }

    /// Path of a file sink, if any (cleanup).
    pub fn path(&self) -> Option<&PathBuf> {
        match &self.kind {
            SinkKind::Memory(_) => None,
            SinkKind::File { path, .. } => Some(path),
        }
    }
}

/// Shared backend tuning.
#[derive(Debug, Clone, Copy)]
pub struct BackendConfig {
    /// Reorder window (max out-of-order distance between processed chunks).
    pub reorder_window: usize,
    /// Fingerprint-table capacity hint (number of expected unique chunks).
    pub table_capacity: usize,
    /// Max records drained per flush critical section.
    pub flush_batch: usize,
    /// Enable the observability layer on TM backends' runtimes.
    pub obs: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            reorder_window: 8192,
            table_capacity: 1 << 16,
            flush_batch: 32,
            obs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn memory_sink_accumulates_records_and_stats() {
        let mut sink = OutputSink::new(SinkTarget::Memory).unwrap();
        let data = b"hello hello hello";
        sink.write_records(&[
            Record::Unique {
                fp: sha256(data),
                payload: Arc::new(crate::lzss::compress(data)),
            },
            Record::Reference { fp: sha256(data) },
        ]);
        let s = sink.stats();
        assert_eq!(s.unique_records, 1);
        assert_eq!(s.reference_records, 1);
        let bytes = sink.contents().unwrap();
        assert_eq!(bytes.len() as u64, s.bytes_written);
        let out = crate::format::reconstruct(&bytes).unwrap();
        assert_eq!(out, [data.as_slice(), data.as_slice()].concat());
    }

    #[test]
    fn file_sink_round_trips() {
        let mut path = std::env::temp_dir();
        path.push(format!("ad_dedup_sink_{}.bin", std::process::id()));
        let mut sink = OutputSink::new(SinkTarget::File(path.clone())).unwrap();
        let data = b"file sink data file sink data";
        sink.write_records(&[Record::Unique {
            fp: sha256(data),
            payload: Arc::new(crate::lzss::compress(data)),
        }]);
        sink.flush();
        let bytes = sink.contents().unwrap();
        assert_eq!(crate::format::reconstruct(&bytes).unwrap(), data.to_vec());
        assert_eq!(sink.path(), Some(&path));
        let _ = std::fs::remove_file(&path);
    }
}
