//! The pthread-style lock backend — PARSEC dedup's original design and the
//! "Pthread" series of Figure 3.
//!
//! Fine-grained locking: the fingerprint table is sharded with one mutex per
//! shard; chunk compression runs outside any lock; the reorder buffer and
//! output stream are protected by a single output lock, and — as in the
//! original kernel — file output is performed *while holding it*. A
//! long-running compression only delays records behind it in the reorder
//! window, and output delays only contenders for the output lock: this is
//! the "well-designed lock-based code" TM must catch up with.

use std::ops::Range;
use std::sync::Arc;

use ad_support::sync::atomic::{AtomicBool, Ordering};
use ad_support::sync::{Condvar, Mutex};

use super::{Backend, BackendConfig, OutputSink, OutputStats, SinkTarget};
use crate::format::Record;
use crate::lzss;
use crate::sha256::{sha256, Digest};

const SHARDS: usize = 64;

struct Entry {
    payload: Mutex<Option<Arc<Vec<u8>>>>,
    ready: Condvar,
    /// Set by the flusher (serialized by the reorder lock).
    written: AtomicBool,
}

impl Entry {
    fn new() -> Arc<Self> {
        Arc::new(Entry {
            payload: Mutex::new(None),
            ready: Condvar::new(),
            written: AtomicBool::new(false),
        })
    }

    fn fill(&self, z: Arc<Vec<u8>>) {
        *self.payload.lock() = Some(z);
        self.ready.notify_all();
    }

    /// Block until the compressed payload is available.
    fn wait_ready(&self) -> Arc<Vec<u8>> {
        let mut guard = self.payload.lock();
        while guard.is_none() {
            self.ready.wait(&mut guard);
        }
        Arc::clone(guard.as_ref().unwrap())
    }
}

struct Reorder {
    slots: Vec<Option<(u64, Digest)>>,
    next_out: u64,
}

/// The lock-based backend.
pub struct LockBackend {
    shards: Vec<Mutex<std::collections::HashMap<Digest, Arc<Entry>>>>,
    reorder: Mutex<Reorder>,
    /// Submitters wait here when the reorder window is full.
    space: Condvar,
    output: Mutex<OutputSink>,
    window: usize,
    flush_batch: usize,
}

impl LockBackend {
    /// Create the backend writing to `target`.
    pub fn new(cfg: BackendConfig, target: SinkTarget) -> std::io::Result<Self> {
        Ok(LockBackend {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
            reorder: Mutex::new(Reorder {
                slots: vec![None; cfg.reorder_window],
                next_out: 0,
            }),
            space: Condvar::new(),
            output: Mutex::new(OutputSink::new(target)?),
            window: cfg.reorder_window,
            flush_batch: cfg.flush_batch,
        })
    }

    fn shard(&self, fp: &Digest) -> &Mutex<std::collections::HashMap<Digest, Arc<Entry>>> {
        let idx = usize::from_le_bytes(fp[..8].try_into().unwrap()) % SHARDS;
        &self.shards[idx]
    }

    fn lookup_entry(&self, fp: &Digest) -> Arc<Entry> {
        self.shard(fp)
            .lock()
            .get(fp)
            .cloned()
            .expect("flushing a fingerprint with no table entry")
    }

    /// Drain in-order records. Output happens while holding the reorder
    /// lock, as in the original kernel.
    fn flush(&self) {
        loop {
            let mut ro = self.reorder.lock();
            let mut records = Vec::new();
            while records.len() < self.flush_batch {
                let idx = (ro.next_out as usize) % self.window;
                match ro.slots[idx] {
                    Some((s, fp)) => {
                        debug_assert_eq!(s, ro.next_out);
                        let entry = self.lookup_entry(&fp);
                        // Wait for compression if the head record is not
                        // ready (holds the reorder lock — faithful to the
                        // original's output-stage behaviour).
                        let payload = entry.wait_ready();
                        let rec = if entry.written.swap(true, Ordering::Relaxed) {
                            Record::Reference { fp }
                        } else {
                            Record::Unique { fp, payload }
                        };
                        records.push(rec);
                        ro.slots[idx] = None;
                        ro.next_out += 1;
                    }
                    None => break,
                }
            }
            if records.is_empty() {
                return;
            }
            self.output.lock().write_records(&records);
            drop(ro);
            self.space.notify_all();
        }
    }
}

impl Backend for LockBackend {
    fn process_chunk(&self, seq: u64, corpus: &Arc<Vec<u8>>, range: Range<usize>) {
        let data = &corpus[range];
        let fp = sha256(data);

        // Deduplicate stage: per-shard critical section.
        let (entry, is_new) = {
            let mut shard = self.shard(&fp).lock();
            match shard.get(&fp) {
                Some(e) => (Arc::clone(e), false),
                None => {
                    let e = Entry::new();
                    shard.insert(fp, Arc::clone(&e));
                    (e, true)
                }
            }
        };

        // Compress stage: pure work, outside all locks.
        if is_new {
            entry.fill(Arc::new(lzss::compress(data)));
        }

        // Reorder/output stage: submit, then flush the ready prefix.
        {
            let mut ro = self.reorder.lock();
            while seq >= ro.next_out + self.window as u64 {
                self.space.wait(&mut ro);
            }
            let idx = (seq as usize) % self.window;
            debug_assert!(ro.slots[idx].is_none());
            ro.slots[idx] = Some((seq, fp));
        }
        self.flush();
    }

    fn finalize(&self, total: u64) {
        loop {
            self.flush();
            let done = self.reorder.lock().next_out >= total;
            if done {
                break;
            }
            std::thread::yield_now();
        }
        self.output.lock().flush();
    }

    fn label(&self) -> String {
        "Pthread".to_string()
    }

    fn output_stats(&self) -> OutputStats {
        self.output.lock().stats()
    }

    fn archive_bytes(&self) -> std::io::Result<Vec<u8>> {
        self.output.lock().contents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusParams};
    use crate::rabin::{chunk_boundaries, ChunkParams};

    fn run_backend(threads: usize, corpus: Arc<Vec<u8>>) -> LockBackend {
        let ranges = chunk_boundaries(&corpus, ChunkParams::tiny());
        let total = ranges.len() as u64;
        let backend = LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    backend.process_chunk(i as u64, &corpus, ranges[i].clone());
                });
            }
        });
        backend.finalize(total);
        backend
    }

    #[test]
    fn single_thread_reconstructs_input() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let backend = run_backend(1, Arc::clone(&corpus));
        let archive = backend.archive_bytes().unwrap();
        assert_eq!(crate::format::reconstruct(&archive).unwrap(), *corpus);
    }

    #[test]
    fn multi_thread_reconstructs_input() {
        let corpus = Arc::new(generate(&CorpusParams::new(256 * 1024)));
        let backend = run_backend(4, Arc::clone(&corpus));
        let archive = backend.archive_bytes().unwrap();
        assert_eq!(crate::format::reconstruct(&archive).unwrap(), *corpus);
    }

    #[test]
    fn duplicates_become_references() {
        let corpus = Arc::new(generate(&CorpusParams::new(256 * 1024).with_dup_ratio(0.8)));
        let backend = run_backend(2, Arc::clone(&corpus));
        let stats = backend.output_stats();
        assert!(stats.reference_records > 0, "no dedup happened: {stats:?}");
        assert!(
            stats.bytes_written < corpus.len() as u64,
            "archive not smaller than input"
        );
    }
}
