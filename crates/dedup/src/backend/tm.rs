//! The transactional backends — the "STM", "HTM", "+DeferIO" and
//! "+DeferAll" series of Figure 3.
//!
//! Shared state is transactional: the fingerprint table is an
//! open-addressed array of `TVar` buckets, the reorder buffer a ring of
//! `TVar` slots. The three flavours differ exactly where the paper's
//! transformations apply:
//!
//! * **Baseline** — output records are written inside an *irrevocable*
//!   transaction (forcing full serialization, as in Wang et al.'s
//!   transactionalized dedup), and compression runs *inside* the
//!   transaction that fills a table entry (long transactions: quiescence
//!   stalls in STM, capacity overflow → serialization in HTM).
//! * **+DeferIO** — the output write is atomically deferred on the output
//!   sink's deferrable object (paper Listing 7): irrevocability gone.
//! * **+DeferAll** — compression is *also* deferred, on the table entry's
//!   deferrable payload cell: transactions become short; HTM fits in
//!   capacity, STM stops stalling quiescers.
//!
//! Run on a [`TmConfig::stm`](ad_stm::TmConfig::stm) runtime for the STM
//! series or [`TmConfig::htm`](ad_stm::TmConfig::htm) for the HTM series.

use std::ops::Range;
use std::sync::Arc;

use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, StmResult, TVar, Tx};
use ad_support::sync::Mutex;

use super::{Backend, BackendConfig, OutputSink, OutputStats, SinkTarget};
use crate::format::Record;
use crate::lzss;
use crate::sha256::{sha256, Digest};

/// Which of the paper's code transformations are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmFlavor {
    /// Irrevocable output, compression inside transactions.
    Baseline,
    /// Output atomically deferred.
    DeferIo,
    /// Output and compression atomically deferred.
    DeferAll,
}

impl TmFlavor {
    fn defer_io(self) -> bool {
        !matches!(self, TmFlavor::Baseline)
    }

    fn defer_compress(self) -> bool {
        matches!(self, TmFlavor::DeferAll)
    }

    /// Label suffix for this flavour.
    pub fn suffix(self) -> &'static str {
        match self {
            TmFlavor::Baseline => "",
            TmFlavor::DeferIo => "+DeferIO",
            TmFlavor::DeferAll => "+DeferAll",
        }
    }
}

/// A fingerprint-table entry. The compressed payload lives behind a
/// deferrable cell so `+DeferAll` can lock it for deferred compression.
struct TmEntry {
    fp: Digest,
    payload: Defer<PayloadCell>,
    written: TVar<bool>,
}

struct PayloadCell {
    data: TVar<Option<Arc<Vec<u8>>>>,
}

impl TmEntry {
    fn new(fp: Digest) -> Arc<Self> {
        Arc::new(TmEntry {
            fp,
            payload: Defer::new(PayloadCell {
                data: TVar::new(None),
            }),
            written: TVar::new(false),
        })
    }
}

/// The transactional dedup backend.
pub struct TmBackend {
    rt: Runtime,
    flavor: TmFlavor,
    buckets: Vec<TVar<Option<Arc<TmEntry>>>>,
    bucket_mask: usize,
    reorder: Vec<TVar<Option<(u64, Digest)>>>,
    next_out: TVar<u64>,
    output: Defer<OutputCell>,
    window: usize,
    flush_batch: usize,
}

/// Deferrable wrapper for the output sink (the paper's deferrable `packet`
/// stream object in Listing 7).
struct OutputCell {
    sink: Mutex<OutputSink>,
}

impl TmBackend {
    /// Create a backend on `rt` with the given flavour.
    pub fn new(
        rt: Runtime,
        flavor: TmFlavor,
        cfg: BackendConfig,
        target: SinkTarget,
    ) -> std::io::Result<Self> {
        let cap = cfg.table_capacity.next_power_of_two().max(1024);
        rt.set_tracing(cfg.obs);
        Ok(TmBackend {
            rt,
            flavor,
            buckets: (0..cap * 2).map(|_| TVar::new(None)).collect(),
            bucket_mask: cap * 2 - 1,
            reorder: (0..cfg.reorder_window).map(|_| TVar::new(None)).collect(),
            next_out: TVar::new(0),
            output: Defer::new(OutputCell {
                sink: Mutex::new(OutputSink::new(target)?),
            }),
            window: cfg.reorder_window,
            flush_batch: cfg.flush_batch,
        })
    }

    /// The runtime this backend transacts on (stats access).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    fn bucket_start(&self, fp: &Digest) -> usize {
        usize::from_le_bytes(fp[..8].try_into().unwrap()) & self.bucket_mask
    }

    /// Probe for `fp`, inserting a fresh entry if absent. Returns the entry
    /// and whether this call reserved it (i.e. this chunk is the first
    /// occurrence and must produce the payload).
    fn lookup_or_reserve(&self, tx: &mut Tx, fp: Digest) -> StmResult<(Arc<TmEntry>, bool)> {
        let mut idx = self.bucket_start(&fp);
        for _ in 0..=self.bucket_mask {
            match tx.read(&self.buckets[idx])? {
                None => {
                    let entry = TmEntry::new(fp);
                    tx.write(&self.buckets[idx], Some(Arc::clone(&entry)))?;
                    return Ok((entry, true));
                }
                Some(e) if e.fp == fp => return Ok((e, false)),
                Some(_) => idx = (idx + 1) & self.bucket_mask,
            }
        }
        panic!("fingerprint table full: raise BackendConfig::table_capacity");
    }

    /// Probe for an existing `fp` (flush path).
    fn find(&self, tx: &mut Tx, fp: &Digest) -> StmResult<Arc<TmEntry>> {
        let mut idx = self.bucket_start(fp);
        loop {
            match tx.read(&self.buckets[idx])? {
                Some(e) if e.fp == *fp => return Ok(e),
                Some(_) => idx = (idx + 1) & self.bucket_mask,
                None => panic!("flushing a fingerprint with no table entry"),
            }
        }
    }

    /// Produce the compressed payload for a newly reserved entry.
    fn compress_into(&self, entry: &Arc<TmEntry>, corpus: &Arc<Vec<u8>>, range: Range<usize>) {
        // Honest footprint of the compressor inside a hardware transaction:
        // input + output + its 64 KiB hash chains (see lzss.rs). This is
        // what makes Compress "access more memory than can be tracked by
        // the HTM" (paper §6.2).
        let compress_footprint = (range.len() as u64) * 9 + 64 * 1024;

        if self.flavor.defer_compress() {
            // +DeferAll: the transaction only locks the payload cell and
            // queues the compression; the pure work runs post-commit while
            // the cell's lock keeps it invisible.
            let entry2 = Arc::clone(entry);
            let corpus2 = Arc::clone(corpus);
            self.rt.atomically(move |tx| {
                let e = Arc::clone(&entry2);
                let c = Arc::clone(&corpus2);
                let r = range.clone();
                atomic_defer(tx, &[&entry2.payload], move || {
                    let z = Arc::new(lzss::compress(&c[r]));
                    e.payload.locked().data.store(Some(z));
                })
            });
        } else {
            // Baseline / +DeferIO: compression executes inside the
            // transaction that publishes the payload. The transaction is
            // long-running: concurrent STM writers stall in quiescence
            // behind it; in HTM its footprint forces a capacity abort and
            // eventual serialization.
            self.rt.atomically(|tx| {
                tx.account_footprint(compress_footprint)?;
                let z = Arc::new(lzss::compress(&corpus[range.clone()]));
                entry.payload.with(tx, |p, tx| tx.write(&p.data, Some(z)))
            });
        }
    }

    /// Submit `(seq, fp)` into the reorder ring (blocking while the window
    /// is full).
    fn submit(&self, seq: u64, fp: Digest) {
        let slot = &self.reorder[(seq as usize) % self.window];
        self.rt.atomically(|tx| {
            if tx.read(slot)?.is_some() {
                // Window full: the previous occupant (seq - window) has not
                // been flushed yet. Wait for the flusher.
                return tx.retry();
            }
            tx.write(slot, Some((seq, fp)))
        });
    }

    /// Drain the in-order prefix of the reorder ring, writing records.
    fn flush(&self) {
        loop {
            let wrote = self.rt.atomically(|tx| self.flush_once(tx));
            if wrote == 0 {
                return;
            }
        }
    }

    /// One flush transaction: collect up to `flush_batch` ready records,
    /// advance `next_out`, and emit them — irrevocably inline (baseline) or
    /// via `atomic_defer` on the output object (+DeferIO/+DeferAll).
    ///
    /// Structured as two phases *within* the transaction: every operation
    /// that can block (`retry` on an unready payload, `atomic_defer`'s lock
    /// acquisition, the escalation to irrevocability) happens before the
    /// first transactional write. This matters when the contention manager
    /// runs the flush serially: serial writes are eager and cannot be
    /// rolled back, so blocking after them would be fatal.
    fn flush_once(&self, tx: &mut Tx) -> StmResult<usize> {
        // ---- Phase 1: reads and lock acquisitions only. ----
        let mut records: Vec<Record> = Vec::new();
        let mut to_clear: Vec<usize> = Vec::new();
        let mut to_mark: Vec<Arc<TmEntry>> = Vec::new();
        let start = tx.read(&self.next_out)?;
        let mut no = start;

        while records.len() < self.flush_batch {
            let idx = (no as usize) % self.window;
            let Some((s, fp)) = tx.read(&self.reorder[idx])? else {
                break;
            };
            debug_assert_eq!(s, no);
            let entry = self.find(tx, &fp)?;
            // The payload may still be compressing: inside another
            // transaction (data not yet visible) or in a deferred op
            // holding the cell's lock (subscription signals Retry). Wait
            // only when it is the head-of-line record; otherwise flush the
            // batch collected so far.
            let payload = match entry.payload.with(tx, |p, tx| tx.read(&p.data)) {
                Ok(Some(p)) => p,
                Ok(None) | Err(ad_stm::StmError::Retry) if !records.is_empty() => break,
                Ok(None) => return tx.retry(),
                Err(e) => return Err(e),
            };
            // A fingerprint already written — or marked Unique earlier in
            // this very batch — becomes a reference.
            let in_batch = to_mark.iter().any(|e| e.fp == fp);
            let rec = if in_batch || tx.read(&entry.written)? {
                Record::Reference { fp }
            } else {
                to_mark.push(Arc::clone(&entry));
                Record::Unique { fp, payload }
            };
            records.push(rec);
            to_clear.push(idx);
            no += 1;
        }

        if records.is_empty() {
            return Ok(0);
        }
        let n = records.len();

        // Last blocking operations: acquire the output lock (DeferIO/All)
        // or escalate to serial mode (baseline).
        enum Emit {
            Deferred,
            Inline(Vec<Record>),
        }
        let emit = if self.flavor.defer_io() {
            // Listing 7: the write is atomically deferred on the output
            // object; ordering across flushes is enforced by its TxLock.
            let out = self.output.clone();
            atomic_defer(tx, &[&self.output], move || {
                out.locked().sink.lock().write_records(&records);
            })?;
            Emit::Deferred
        } else {
            // Wang et al.'s version: output inside the transaction requires
            // irrevocability, serializing every transaction in the program.
            tx.require_irrevocable()?;
            Emit::Inline(records)
        };

        // ---- Phase 2: writes (nothing below can block or abort). ----
        for idx in to_clear {
            tx.write(&self.reorder[idx], None)?;
        }
        for entry in to_mark {
            tx.write(&entry.written, true)?;
        }
        tx.write(&self.next_out, no)?;

        if let Emit::Inline(records) = emit {
            // Safe: the transaction is irrevocable (exclusive) here.
            self.output
                .peek_unsynchronized()
                .sink
                .lock()
                .write_records(&records);
        }
        Ok(n)
    }
}

impl Backend for TmBackend {
    fn process_chunk(&self, seq: u64, corpus: &Arc<Vec<u8>>, range: Range<usize>) {
        let data = &corpus[range.clone()];
        let fp = sha256(data);

        // Deduplicate stage.
        let (entry, is_new) = self.rt.atomically(|tx| self.lookup_or_reserve(tx, fp));

        // Compress stage (first occurrence only).
        if is_new {
            self.compress_into(&entry, corpus, range);
        }

        // Reorder/output stage.
        self.submit(seq, fp);
        self.flush();
    }

    fn finalize(&self, total: u64) {
        loop {
            self.flush();
            if self.next_out.load() >= total {
                break;
            }
            std::thread::yield_now();
        }
        self.output.peek_unsynchronized().sink.lock().flush();
    }

    fn label(&self) -> String {
        let base = if self.rt.config().is_htm() {
            "HTM"
        } else {
            "STM"
        };
        format!("{base}{}", self.flavor.suffix())
    }

    fn output_stats(&self) -> OutputStats {
        self.output.peek_unsynchronized().sink.lock().stats()
    }

    fn archive_bytes(&self) -> std::io::Result<Vec<u8>> {
        self.output.peek_unsynchronized().sink.lock().contents()
    }

    fn diagnostics(&self) -> String {
        format!("{}", self.rt.stats())
    }

    fn stats_report(&self) -> Option<ad_stm::StatsReport> {
        Some(self.rt.snapshot_stats())
    }

    fn take_trace(&self) -> Option<ad_stm::Trace> {
        Some(self.rt.take_trace())
    }

    fn is_table_var(&self, var: u64) -> bool {
        self.buckets.iter().any(|b| b.id() as u64 == var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusParams};
    use crate::rabin::{chunk_boundaries, ChunkParams};
    use ad_stm::TmConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn run_backend(
        rt: Runtime,
        flavor: TmFlavor,
        threads: usize,
        corpus: &Arc<Vec<u8>>,
    ) -> TmBackend {
        let ranges = chunk_boundaries(corpus, ChunkParams::tiny());
        let total = ranges.len() as u64;
        let backend =
            TmBackend::new(rt, flavor, BackendConfig::default(), SinkTarget::Memory).unwrap();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    backend.process_chunk(i as u64, corpus, ranges[i].clone());
                });
            }
        });
        backend.finalize(total);
        backend
    }

    fn check_reconstruction(backend: &TmBackend, corpus: &Arc<Vec<u8>>) {
        let archive = backend.archive_bytes().unwrap();
        assert_eq!(
            crate::format::reconstruct(&archive).unwrap(),
            **corpus,
            "archive does not reconstruct the input ({})",
            backend.label()
        );
    }

    #[test]
    fn stm_baseline_reconstructs() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let b = run_backend(
            Runtime::new(TmConfig::stm()),
            TmFlavor::Baseline,
            2,
            &corpus,
        );
        check_reconstruction(&b, &corpus);
        assert_eq!(b.label(), "STM");
        // Irrevocable output ⇒ serializations happened.
        assert!(b.runtime().stats().serializations > 0);
    }

    #[test]
    fn stm_defer_io_reconstructs_without_irrevocability() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let b = run_backend(Runtime::new(TmConfig::stm()), TmFlavor::DeferIo, 2, &corpus);
        check_reconstruction(&b, &corpus);
        assert_eq!(b.label(), "STM+DeferIO");
        let s = b.runtime().stats();
        assert_eq!(
            s.aborts_unsupported, 0,
            "DeferIO must not need irrevocability: {s}"
        );
        assert!(s.deferred_ops > 0);
    }

    #[test]
    fn stm_defer_all_reconstructs() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let b = run_backend(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            4,
            &corpus,
        );
        check_reconstruction(&b, &corpus);
        assert_eq!(b.label(), "STM+DeferAll");
    }

    #[test]
    fn htm_baseline_serializes_on_capacity() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let b = run_backend(
            Runtime::new(TmConfig::htm()),
            TmFlavor::Baseline,
            2,
            &corpus,
        );
        check_reconstruction(&b, &corpus);
        let s = b.runtime().stats();
        assert!(
            s.aborts_capacity > 0,
            "compression inside HTM transactions must overflow capacity: {s}"
        );
        assert!(s.serializations > 0);
    }

    #[test]
    fn htm_defer_all_avoids_capacity_aborts() {
        let corpus = Arc::new(generate(&CorpusParams::new(128 * 1024)));
        let b = run_backend(
            Runtime::new(TmConfig::htm()),
            TmFlavor::DeferAll,
            4,
            &corpus,
        );
        check_reconstruction(&b, &corpus);
        let s = b.runtime().stats();
        assert_eq!(
            s.aborts_capacity, 0,
            "deferred compression must fit HTM capacity: {s}"
        );
        assert_eq!(b.label(), "HTM+DeferAll");
    }

    #[test]
    fn dedup_produces_references() {
        let corpus = Arc::new(generate(&CorpusParams::new(256 * 1024).with_dup_ratio(0.8)));
        let b = run_backend(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            2,
            &corpus,
        );
        let stats = b.output_stats();
        assert!(stats.reference_records > 0);
        check_reconstruction(&b, &corpus);
    }

    #[test]
    fn contention_report_attributes_table_conflicts() {
        // Race every thread over the same sequence of fresh fingerprints:
        // each first occurrence writes a bucket, so concurrent probes of
        // the same key conflict on fingerprint-table TVars and the trace's
        // contention report must attribute the failures there. Conflicts
        // are probabilistic per round (a scheduler can serialize a round),
        // so retry with fresh keys until one lands.
        let backend = TmBackend::new(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            BackendConfig {
                obs: true,
                ..BackendConfig::default()
            },
            SinkTarget::Memory,
        )
        .unwrap();
        for round in 0..20u64 {
            let fps: Vec<Digest> = (0..1024u64)
                .map(|i| sha256(&(round << 32 | i).to_le_bytes()))
                .collect();
            let start = std::sync::Barrier::new(4);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        // All threads walk the same key sequence in lockstep
                        // from the barrier, so reserves of the same key race.
                        start.wait();
                        for fp in &fps {
                            backend
                                .rt
                                .atomically(|tx| backend.lookup_or_reserve(tx, *fp).map(|_| ()));
                        }
                    });
                }
            });
            let report = backend.take_trace().unwrap().contention_report(8);
            let table_fails: u64 = report
                .entries
                .iter()
                .filter(|e| backend.is_table_var(e.var))
                .map(|e| e.fails)
                .sum();
            if table_fails > 0 {
                return;
            }
        }
        panic!("racing reserves never produced a table-attributed validate_fail");
    }

    #[test]
    fn all_flavors_agree_on_archive_semantics() {
        let corpus = Arc::new(generate(&CorpusParams::new(96 * 1024)));
        let mut uniques = Vec::new();
        for flavor in [TmFlavor::Baseline, TmFlavor::DeferIo, TmFlavor::DeferAll] {
            let b = run_backend(Runtime::new(TmConfig::stm()), flavor, 3, &corpus);
            check_reconstruction(&b, &corpus);
            uniques.push(b.output_stats().unique_records);
        }
        // The set of unique chunks is a property of the input, not of the
        // synchronization strategy.
        assert_eq!(uniques[0], uniques[1]);
        assert_eq!(uniques[1], uniques[2]);
    }
}
