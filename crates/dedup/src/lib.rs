//! # ad-dedup — a PARSEC-dedup-style pipeline kernel
//!
//! The workload of the atomic-deferral paper's headline experiment
//! (Figure 3): a deduplicating compression pipeline in the shape of PARSEC
//! `dedup`, rebuilt from scratch with pluggable synchronization backends so
//! the paper's series — Pthread locks, STM, HTM, `+DeferIO`, `+DeferAll` —
//! can be compared on identical code.
//!
//! Substrates implemented here (all from scratch; see DESIGN.md §2):
//!
//! * [`rabin`] — rolling-hash content-defined chunking (Fragment /
//!   FragmentRefine stages);
//! * [`sha256`] — chunk fingerprints (FIPS 180-4, tested against official
//!   vectors);
//! * [`lzss`] — the pure, CPU-bound compressor standing in for gzip
//!   (Compress stage), plus a decompressor for verification;
//! * [`corpus`] — a reproducible synthetic input generator with
//!   controllable duplication ratio (substitute for PARSEC's data set);
//! * [`mod@format`] — the archive format and a verifying reconstructor;
//! * [`backend`] — the synchronization strategies over the shared
//!   fingerprint table, reorder buffer, and output stream;
//! * [`pipeline`] — the driver that ties it together and measures.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ad_dedup::backend::{BackendConfig, SinkTarget};
//! use ad_dedup::backend::tm::{TmBackend, TmFlavor};
//! use ad_dedup::corpus::{generate, CorpusParams};
//! use ad_dedup::pipeline::{run_pipeline_verified, PipelineConfig};
//! use ad_stm::{Runtime, TmConfig};
//!
//! let corpus = Arc::new(generate(&CorpusParams::new(64 * 1024)));
//! let backend = TmBackend::new(
//!     Runtime::new(TmConfig::stm()),
//!     TmFlavor::DeferAll,
//!     BackendConfig::default(),
//!     SinkTarget::Memory,
//! ).unwrap();
//! let report = run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &backend);
//! assert_eq!(report.total_chunks, report.unique_chunks + report.duplicate_chunks);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod corpus;
pub mod format;
pub mod lzss;
pub mod pipeline;
pub mod rabin;
pub mod sha256;

pub use backend::locks::LockBackend;
pub use backend::tm::{TmBackend, TmFlavor};
pub use backend::{Backend, BackendConfig, SinkTarget};
pub use pipeline::{run_pipeline, run_pipeline_verified, DedupReport, PipelineConfig};
