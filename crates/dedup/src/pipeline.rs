//! The dedup pipeline driver.
//!
//! Reproduces PARSEC dedup's structure: the input stream is cut into coarse
//! fragments (Fragment) and re-chunked at fine boundaries (FragmentRefine);
//! the chunks then flow through Deduplicate → Compress → Reorder/Output,
//! which is where all the shared state lives and where the synchronization
//! [`Backend`] is exercised. Worker threads pull chunks from a bounded
//! channel; the producer (fragmentation) runs on the calling thread.

use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ad_support::channel;

use crate::backend::Backend;
use crate::rabin::{chunk_boundaries, ChunkParams};

/// Pipeline tuning.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker threads for the Deduplicate/Compress/Output stages (the
    /// paper's x-axis).
    pub threads: usize,
    /// Coarse (Fragment) chunking parameters.
    pub coarse: ChunkParams,
    /// Fine (FragmentRefine) chunking parameters.
    pub fine: ChunkParams,
    /// Work-queue depth between the producer and the workers.
    pub queue_depth: usize,
}

impl PipelineConfig {
    /// Defaults for `threads` workers, with chunk parameters scaled for
    /// multi-megabyte corpora.
    pub fn new(threads: usize) -> Self {
        PipelineConfig {
            threads,
            coarse: ChunkParams::coarse(),
            fine: ChunkParams::fine(),
            queue_depth: 1024,
        }
    }

    /// Small chunks for small test corpora.
    pub fn tiny(threads: usize) -> Self {
        PipelineConfig {
            threads,
            coarse: ChunkParams {
                divisor: 4096,
                min: 1024,
                max: 16 * 1024,
            },
            fine: ChunkParams::tiny(),
            queue_depth: 256,
        }
    }
}

/// What one pipeline run measured.
#[derive(Debug, Clone)]
pub struct DedupReport {
    /// Backend series label ("Pthread", "STM+DeferAll", ...).
    pub label: String,
    /// Worker thread count.
    pub threads: usize,
    /// Wall-clock time, fragmentation through final flush.
    pub elapsed: Duration,
    /// Chunks processed.
    pub total_chunks: u64,
    /// Unique chunks (archive `U` records).
    pub unique_chunks: u64,
    /// Duplicate chunks (archive `R` records).
    pub duplicate_chunks: u64,
    /// Input bytes.
    pub bytes_in: u64,
    /// Archive bytes.
    pub bytes_out: u64,
    /// Backend diagnostics (TM stats counters; empty for locks).
    pub diagnostics: String,
}

impl DedupReport {
    /// Deduplication + compression ratio achieved.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            0.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

/// Fragment + FragmentRefine: two-pass content-defined chunking, exactly
/// covering the corpus.
pub fn fragment(corpus: &[u8], cfg: &PipelineConfig) -> Vec<Range<usize>> {
    let mut fine = Vec::new();
    for coarse in chunk_boundaries(corpus, cfg.coarse) {
        for sub in chunk_boundaries(&corpus[coarse.clone()], cfg.fine) {
            fine.push(coarse.start + sub.start..coarse.start + sub.end);
        }
    }
    fine
}

/// Run the pipeline over `corpus` with `backend`, returning the measured
/// report. The archive is left inside the backend for verification.
pub fn run_pipeline(
    corpus: &Arc<Vec<u8>>,
    cfg: &PipelineConfig,
    backend: &dyn Backend,
) -> DedupReport {
    let start = Instant::now();

    // Fragment + refine on the producer thread.
    let ranges = fragment(corpus, cfg);
    let total = ranges.len() as u64;

    let (tx, rx) = channel::bounded::<(u64, Range<usize>)>(cfg.queue_depth);
    std::thread::scope(|s| {
        for _ in 0..cfg.threads.max(1) {
            let rx = rx.clone();
            s.spawn(move || {
                while let Ok((seq, range)) = rx.recv() {
                    backend.process_chunk(seq, corpus, range);
                }
            });
        }
        drop(rx);
        for (seq, range) in ranges.into_iter().enumerate() {
            tx.send((seq as u64, range)).expect("workers died");
        }
        drop(tx);
    });
    backend.finalize(total);
    let elapsed = start.elapsed();

    let out = backend.output_stats();
    DedupReport {
        label: backend.label(),
        threads: cfg.threads,
        elapsed,
        total_chunks: total,
        unique_chunks: out.unique_records,
        duplicate_chunks: out.reference_records,
        bytes_in: corpus.len() as u64,
        bytes_out: out.bytes_written,
        diagnostics: backend.diagnostics(),
    }
}

/// Run the pipeline in PARSEC's *staged* shape: separate thread pools per
/// stage, connected by bounded queues —
/// `Fragment (1) → FragmentRefine (n) → Sequence (1) → Process (n)` —
/// instead of fusing fragmentation into the producer. Produces exactly the
/// same archive as [`run_pipeline`] (same content-defined boundaries), so
/// the two are interchangeable; the staged form exists for fidelity and for
/// studying queue effects.
pub fn run_pipeline_staged(
    corpus: &Arc<Vec<u8>>,
    cfg: &PipelineConfig,
    backend: &dyn Backend,
) -> DedupReport {
    use std::collections::HashMap;

    let start = Instant::now();
    let workers = cfg.threads.max(1);

    // Fragment (producer): coarse ranges with their index.
    let (coarse_tx, coarse_rx) = channel::bounded::<(usize, Range<usize>)>(cfg.queue_depth);
    // Refine → Sequence: fine ranges per coarse chunk, possibly out of order.
    let (refined_tx, refined_rx) = channel::bounded::<(usize, Vec<Range<usize>>)>(cfg.queue_depth);
    // Sequence → Process: globally ordered (seq, range).
    let (seq_tx, seq_rx) = channel::bounded::<(u64, Range<usize>)>(cfg.queue_depth);

    let mut total = 0u64;
    std::thread::scope(|s| {
        // FragmentRefine workers.
        for _ in 0..workers {
            let rx = coarse_rx.clone();
            let tx = refined_tx.clone();
            let fine = cfg.fine;
            s.spawn(move || {
                while let Ok((idx, coarse)) = rx.recv() {
                    let subs: Vec<Range<usize>> = chunk_boundaries(&corpus[coarse.clone()], fine)
                        .into_iter()
                        .map(|r| coarse.start + r.start..coarse.start + r.end)
                        .collect();
                    if tx.send((idx, subs)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(coarse_rx);
        drop(refined_tx);

        // Sequence stage: restore coarse order, hand out global sequence
        // numbers.
        let seq_stage = s.spawn(move || {
            let mut next_coarse = 0usize;
            let mut pending: HashMap<usize, Vec<Range<usize>>> = HashMap::new();
            let mut seq = 0u64;
            while let Ok((idx, subs)) = refined_rx.recv() {
                pending.insert(idx, subs);
                while let Some(subs) = pending.remove(&next_coarse) {
                    for r in subs {
                        if seq_tx.send((seq, r)).is_err() {
                            return seq;
                        }
                        seq += 1;
                    }
                    next_coarse += 1;
                }
            }
            assert!(pending.is_empty(), "refine stage dropped a coarse chunk");
            drop(seq_tx);
            seq
        });

        // Process workers (Deduplicate/Compress/Reorder+Output).
        for _ in 0..workers {
            let rx = seq_rx.clone();
            s.spawn(move || {
                while let Ok((seq, range)) = rx.recv() {
                    backend.process_chunk(seq, corpus, range);
                }
            });
        }
        drop(seq_rx);

        // Fragment on this thread.
        for (idx, coarse) in chunk_boundaries(corpus, cfg.coarse).into_iter().enumerate() {
            if coarse_tx.send((idx, coarse)).is_err() {
                break;
            }
        }
        drop(coarse_tx);

        total = seq_stage.join().expect("sequence stage panicked");
    });
    backend.finalize(total);
    let elapsed = start.elapsed();

    let out = backend.output_stats();
    DedupReport {
        label: format!("{} (staged)", backend.label()),
        threads: cfg.threads,
        elapsed,
        total_chunks: total,
        unique_chunks: out.unique_records,
        duplicate_chunks: out.reference_records,
        bytes_in: corpus.len() as u64,
        bytes_out: out.bytes_written,
        diagnostics: backend.diagnostics(),
    }
}

/// Run the pipeline and verify the archive reconstructs the corpus exactly.
///
/// # Panics
///
/// Panics if the archive is corrupt or does not match — benchmark results
/// are only meaningful when the output is right.
pub fn run_pipeline_verified(
    corpus: &Arc<Vec<u8>>,
    cfg: &PipelineConfig,
    backend: &dyn Backend,
) -> DedupReport {
    let report = run_pipeline(corpus, cfg, backend);
    let archive = backend.archive_bytes().expect("read archive");
    let rebuilt = crate::format::reconstruct(&archive)
        .unwrap_or_else(|e| panic!("archive corrupt ({}): {e}", report.label));
    assert_eq!(
        rebuilt, **corpus,
        "archive does not reconstruct the input ({})",
        report.label
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::locks::LockBackend;
    use crate::backend::tm::{TmBackend, TmFlavor};
    use crate::backend::{BackendConfig, SinkTarget};
    use crate::corpus::{generate, CorpusParams};
    use ad_stm::{Runtime, TmConfig};

    #[test]
    fn fragment_covers_corpus() {
        let corpus = generate(&CorpusParams::new(200_000));
        let cfg = PipelineConfig::tiny(1);
        let ranges = fragment(&corpus, &cfg);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, corpus.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn lock_pipeline_end_to_end() {
        let corpus = Arc::new(generate(&CorpusParams::new(200_000)));
        let backend = LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap();
        let report = run_pipeline_verified(&corpus, &PipelineConfig::tiny(3), &backend);
        assert_eq!(report.label, "Pthread");
        assert_eq!(
            report.total_chunks,
            report.unique_chunks + report.duplicate_chunks
        );
        assert!(report.ratio() > 1.0, "no space saved: {report:?}");
    }

    #[test]
    fn tm_pipeline_end_to_end_all_flavors() {
        let corpus = Arc::new(generate(&CorpusParams::new(150_000)));
        for flavor in [TmFlavor::Baseline, TmFlavor::DeferIo, TmFlavor::DeferAll] {
            let backend = TmBackend::new(
                Runtime::new(TmConfig::stm()),
                flavor,
                BackendConfig::default(),
                SinkTarget::Memory,
            )
            .unwrap();
            let report = run_pipeline_verified(&corpus, &PipelineConfig::tiny(3), &backend);
            assert_eq!(
                report.total_chunks,
                report.unique_chunks + report.duplicate_chunks,
                "{flavor:?}"
            );
        }
    }

    #[test]
    fn file_sink_pipeline() {
        let mut path = std::env::temp_dir();
        path.push(format!("ad_dedup_pipe_{}.archive", std::process::id()));
        let corpus = Arc::new(generate(&CorpusParams::new(100_000)));
        let backend =
            LockBackend::new(BackendConfig::default(), SinkTarget::File(path.clone())).unwrap();
        let report = run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &backend);
        assert!(report.bytes_out > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn staged_pipeline_matches_fused_pipeline() {
        let corpus = Arc::new(generate(&CorpusParams::new(180_000)));
        let cfg = PipelineConfig::tiny(3);

        let fused = LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap();
        let fused_report = run_pipeline(&corpus, &cfg, &fused);

        let staged = LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap();
        let staged_report = run_pipeline_staged(&corpus, &cfg, &staged);

        // Identical content-defined boundaries ⇒ identical archives.
        assert_eq!(staged_report.total_chunks, fused_report.total_chunks);
        assert_eq!(staged_report.unique_chunks, fused_report.unique_chunks);
        assert_eq!(staged_report.bytes_out, fused_report.bytes_out);
        assert!(staged_report.label.contains("staged"));
        let rebuilt = crate::format::reconstruct(&staged.archive_bytes().unwrap()).unwrap();
        assert_eq!(rebuilt, *corpus);
    }

    #[test]
    fn staged_pipeline_with_tm_backend() {
        let corpus = Arc::new(generate(&CorpusParams::new(120_000)));
        let backend = TmBackend::new(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            BackendConfig::default(),
            SinkTarget::Memory,
        )
        .unwrap();
        let report = run_pipeline_staged(&corpus, &PipelineConfig::tiny(2), &backend);
        let rebuilt = crate::format::reconstruct(&backend.archive_bytes().unwrap()).unwrap();
        assert_eq!(rebuilt, *corpus);
        assert_eq!(
            report.total_chunks,
            report.unique_chunks + report.duplicate_chunks
        );
    }

    #[test]
    fn single_threaded_pipeline_works() {
        let corpus = Arc::new(generate(&CorpusParams::new(80_000)));
        let backend = TmBackend::new(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            BackendConfig::default(),
            SinkTarget::Memory,
        )
        .unwrap();
        run_pipeline_verified(&corpus, &PipelineConfig::tiny(1), &backend);
    }
}
