//! The dedup archive format and its decoder.
//!
//! Mirrors PARSEC dedup's output: a sequence of records in original chunk
//! order, where the **first written** occurrence of a chunk carries its
//! compressed payload and later occurrences are fingerprint references.
//! The decoder reconstructs the original stream byte-for-byte, which is how
//! every benchmark run is verified.
//!
//! Wire format (little-endian):
//!
//! ```text
//! unique record:    'U' | fingerprint (32 bytes) | payload_len: u32 | payload
//! reference record: 'R' | fingerprint (32 bytes)
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::lzss;
use crate::sha256::{to_hex, Digest};

/// One archive record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First written occurrence: fingerprint + LZSS-compressed chunk data.
    Unique {
        /// SHA-256 of the uncompressed chunk.
        fp: Digest,
        /// Compressed chunk payload.
        payload: Arc<Vec<u8>>,
    },
    /// A repeat of an earlier chunk.
    Reference {
        /// SHA-256 of the referenced chunk.
        fp: Digest,
    },
}

impl Record {
    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Record::Unique { fp, payload } => {
                out.push(b'U');
                out.extend_from_slice(fp);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Record::Reference { fp } => {
                out.push(b'R');
                out.extend_from_slice(fp);
            }
        }
    }

    /// Serialized byte length.
    pub fn encoded_len(&self) -> usize {
        match self {
            Record::Unique { payload, .. } => 1 + 32 + 4 + payload.len(),
            Record::Reference { .. } => 1 + 32,
        }
    }
}

/// Archive decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream ended inside a record.
    Truncated,
    /// Unknown record tag byte.
    BadTag(u8),
    /// A reference to a fingerprint not yet seen as a unique record —
    /// exactly the ordering violation the output stage must prevent.
    DanglingReference(String),
    /// A unique record's payload failed to decompress.
    Corrupt(String),
    /// A unique record's decompressed payload does not hash to its
    /// fingerprint.
    FingerprintMismatch(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "archive truncated"),
            DecodeError::BadTag(t) => write!(f, "bad record tag {t:#x}"),
            DecodeError::DanglingReference(fp) => {
                write!(f, "reference to unseen fingerprint {fp}")
            }
            DecodeError::Corrupt(e) => write!(f, "payload corrupt: {e}"),
            DecodeError::FingerprintMismatch(fp) => {
                write!(f, "payload does not match fingerprint {fp}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Parse an archive into records.
pub fn decode_records(mut data: &[u8]) -> Result<Vec<Record>, DecodeError> {
    let mut records = Vec::new();
    while !data.is_empty() {
        let tag = data[0];
        data = &data[1..];
        if data.len() < 32 {
            return Err(DecodeError::Truncated);
        }
        let mut fp = [0u8; 32];
        fp.copy_from_slice(&data[..32]);
        data = &data[32..];
        match tag {
            b'U' => {
                if data.len() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
                data = &data[4..];
                if data.len() < len {
                    return Err(DecodeError::Truncated);
                }
                let payload = Arc::new(data[..len].to_vec());
                data = &data[len..];
                records.push(Record::Unique { fp, payload });
            }
            b'R' => records.push(Record::Reference { fp }),
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    Ok(records)
}

/// Decode an archive and reconstruct the original input stream, verifying
/// every payload against its fingerprint.
pub fn reconstruct(archive: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let records = decode_records(archive)?;
    let mut chunks: HashMap<Digest, Vec<u8>> = HashMap::new();
    let mut out = Vec::new();
    for rec in records {
        match rec {
            Record::Unique { fp, payload } => {
                let raw =
                    lzss::decompress(&payload).map_err(|e| DecodeError::Corrupt(e.to_string()))?;
                if crate::sha256::sha256(&raw) != fp {
                    return Err(DecodeError::FingerprintMismatch(to_hex(&fp)));
                }
                out.extend_from_slice(&raw);
                chunks.insert(fp, raw);
            }
            Record::Reference { fp } => {
                let raw = chunks
                    .get(&fp)
                    .ok_or_else(|| DecodeError::DanglingReference(to_hex(&fp)))?;
                out.extend_from_slice(raw);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn unique(data: &[u8]) -> Record {
        Record::Unique {
            fp: sha256(data),
            payload: Arc::new(lzss::compress(data)),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let recs = vec![
            unique(b"first chunk first chunk"),
            Record::Reference {
                fp: sha256(b"first chunk first chunk"),
            },
            unique(b"second chunk entirely different"),
        ];
        let mut buf = Vec::new();
        for r in &recs {
            r.encode_into(&mut buf);
            assert_eq!(
                r.encoded_len(),
                {
                    let mut tmp = Vec::new();
                    r.encode_into(&mut tmp);
                    tmp.len()
                },
                "encoded_len mismatch"
            );
        }
        assert_eq!(decode_records(&buf).unwrap(), recs);
    }

    #[test]
    fn reconstruct_resolves_references() {
        let a = b"alpha block alpha block alpha block".to_vec();
        let b = b"beta block beta block".to_vec();
        let mut buf = Vec::new();
        unique(&a).encode_into(&mut buf);
        unique(&b).encode_into(&mut buf);
        Record::Reference { fp: sha256(&a) }.encode_into(&mut buf);
        let out = reconstruct(&buf).unwrap();
        let mut expected = a.clone();
        expected.extend_from_slice(&b);
        expected.extend_from_slice(&a);
        assert_eq!(out, expected);
    }

    #[test]
    fn dangling_reference_detected() {
        let mut buf = Vec::new();
        Record::Reference {
            fp: sha256(b"never written"),
        }
        .encode_into(&mut buf);
        assert!(matches!(
            reconstruct(&buf),
            Err(DecodeError::DanglingReference(_))
        ));
    }

    #[test]
    fn truncated_archive_detected() {
        let mut buf = Vec::new();
        unique(b"some chunk data goes here").encode_into(&mut buf);
        for cut in [1, 10, 33, buf.len() - 1] {
            assert!(
                decode_records(&buf[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = vec![b'X'];
        buf.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode_records(&buf), Err(DecodeError::BadTag(b'X')));
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let mut buf = Vec::new();
        Record::Unique {
            fp: sha256(b"claimed content"),
            payload: Arc::new(lzss::compress(b"actual different content")),
        }
        .encode_into(&mut buf);
        assert!(matches!(
            reconstruct(&buf),
            Err(DecodeError::FingerprintMismatch(_))
        ));
    }

    #[test]
    fn empty_archive_is_empty_stream() {
        assert_eq!(reconstruct(&[]).unwrap(), Vec::<u8>::new());
    }
}
