//! Rabin-style rolling hash and content-defined chunking.
//!
//! PARSEC dedup splits its input in two passes: *Fragment* cuts the stream
//! into coarse chunks at rolling-hash anchors, and *FragmentRefine* re-chunks
//! each coarse chunk at finer anchors. Content-defined boundaries make the
//! chunking insertion-stable: editing one region of the input only changes
//! the fingerprints of nearby chunks, which is what makes deduplication
//! effective.
//!
//! We use a byte-wise polynomial rolling hash over a fixed window (a
//! practical Rabin-fingerprint stand-in with the same boundary-stability
//! property) and declare a boundary whenever `hash % divisor == divisor - 1`,
//! with configurable minimum and maximum chunk sizes.

/// Width of the rolling window in bytes.
pub const WINDOW: usize = 48;

const MULT: u64 = 0x0100_0000_01b3; // FNV-ish odd multiplier

/// Precomputed `MULT^WINDOW` for O(1) removal of the outgoing byte.
fn mult_pow_window() -> u64 {
    let mut p = 1u64;
    for _ in 0..WINDOW {
        p = p.wrapping_mul(MULT);
    }
    p
}

/// A rolling hash over the last [`WINDOW`] bytes seen.
pub struct RollingHash {
    hash: u64,
    window: [u8; WINDOW],
    pos: usize,
    filled: bool,
    out_mult: u64,
}

impl RollingHash {
    /// Empty window.
    pub fn new() -> Self {
        // The hash maintains the invariant
        //   hash = Σ_{i in window} (byte_i + 1) · MULT^(W-1-i)
        // so it must start at the hash of the all-zeros window; otherwise a
        // constant offset (multiplied by MULT on every push) would make the
        // value depend on how many bytes were ever pushed, not just on the
        // current window contents.
        let mut h = 0u64;
        for _ in 0..WINDOW {
            h = h.wrapping_mul(MULT).wrapping_add(1);
        }
        RollingHash {
            hash: h,
            window: [0; WINDOW],
            pos: 0,
            filled: false,
            out_mult: mult_pow_window(),
        }
    }

    /// Push one byte, returning the updated hash.
    #[inline]
    pub fn push(&mut self, byte: u8) -> u64 {
        let outgoing = self.window[self.pos];
        self.window[self.pos] = byte;
        self.pos = (self.pos + 1) % WINDOW;
        if self.pos == 0 {
            self.filled = true;
        }
        // hash = hash * M + in - out * M^W
        self.hash = self
            .hash
            .wrapping_mul(MULT)
            .wrapping_add(byte as u64 + 1)
            .wrapping_sub(self.out_mult.wrapping_mul(outgoing as u64 + 1));
        self.hash
    }

    /// Has the window seen at least [`WINDOW`] bytes?
    pub fn primed(&self) -> bool {
        self.filled
    }

    /// Current hash value.
    pub fn value(&self) -> u64 {
        self.hash
    }
}

impl Default for RollingHash {
    fn default() -> Self {
        RollingHash::new()
    }
}

/// Content-defined chunking parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChunkParams {
    /// Boundary when `hash % divisor == divisor - 1`; expected chunk size is
    /// roughly `divisor` bytes past `min`.
    pub divisor: u64,
    /// Never cut before this many bytes.
    pub min: usize,
    /// Always cut at this many bytes.
    pub max: usize,
}

impl ChunkParams {
    /// Coarse (Fragment-stage) parameters: ~128 KiB expected.
    pub fn coarse() -> Self {
        ChunkParams {
            divisor: 128 * 1024,
            min: 32 * 1024,
            max: 512 * 1024,
        }
    }

    /// Fine (FragmentRefine-stage) parameters: ~8 KiB expected.
    pub fn fine() -> Self {
        ChunkParams {
            divisor: 8 * 1024,
            min: 1024,
            max: 32 * 1024,
        }
    }

    /// Tiny parameters for fast tests.
    pub fn tiny() -> Self {
        ChunkParams {
            divisor: 256,
            min: 64,
            max: 1024,
        }
    }
}

/// Split `data` at content-defined boundaries. The returned ranges cover
/// `data` exactly, in order, without gaps or overlaps.
pub fn chunk_boundaries(data: &[u8], params: ChunkParams) -> Vec<std::ops::Range<usize>> {
    assert!(params.min >= 1 && params.max >= params.min && params.divisor >= 2);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut hash = RollingHash::new();
    let mut len = 0usize;

    for (i, &b) in data.iter().enumerate() {
        let h = hash.push(b);
        len += 1;
        let at_boundary =
            len >= params.min && hash.primed() && h % params.divisor == params.divisor - 1;
        if at_boundary || len >= params.max {
            ranges.push(start..i + 1);
            start = i + 1;
            len = 0;
            hash = RollingHash::new();
        }
    }
    if start < data.len() {
        ranges.push(start..data.len());
    }
    ranges
}

/// Convenience: materialize chunks as slices.
pub fn chunk(data: &[u8], params: ChunkParams) -> Vec<&[u8]> {
    chunk_boundaries(data, params)
        .into_iter()
        .map(|r| &data[r])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn boundaries_cover_input_exactly() {
        let data = pseudo_random(100_000, 42);
        let ranges = chunk_boundaries(&data, ChunkParams::tiny());
        assert!(!ranges.is_empty());
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, data.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap");
        }
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let data = pseudo_random(200_000, 7);
        let p = ChunkParams::tiny();
        let ranges = chunk_boundaries(&data, p);
        for (i, r) in ranges.iter().enumerate() {
            let len = r.end - r.start;
            assert!(len <= p.max, "chunk {i} too large: {len}");
            if i + 1 != ranges.len() {
                assert!(len >= p.min, "chunk {i} too small: {len}");
            }
        }
    }

    #[test]
    fn expected_chunk_size_is_near_divisor() {
        let data = pseudo_random(1_000_000, 3);
        let p = ChunkParams::tiny();
        let ranges = chunk_boundaries(&data, p);
        let mean = data.len() / ranges.len();
        // Expected size ≈ min + divisor; allow a generous band.
        assert!(
            mean > (p.divisor as usize) / 2 && mean < (p.divisor as usize + p.min) * 4,
            "mean chunk size {mean} wildly off"
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = pseudo_random(50_000, 11);
        let a = chunk_boundaries(&data, ChunkParams::tiny());
        let b = chunk_boundaries(&data, ChunkParams::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn identical_regions_produce_identical_chunks() {
        // Duplicate content must yield duplicate chunks (the property dedup
        // relies on): a stream of the same block repeated has few distinct
        // chunk values.
        let block = pseudo_random(8_192, 5);
        let mut data = Vec::new();
        for _ in 0..32 {
            data.extend_from_slice(&block);
        }
        let chunks = chunk(&data, ChunkParams::tiny());
        let distinct: std::collections::HashSet<&[u8]> = chunks.iter().copied().collect();
        assert!(
            distinct.len() * 4 < chunks.len(),
            "expected heavy duplication: {} distinct of {}",
            distinct.len(),
            chunks.len()
        );
    }

    #[test]
    fn boundary_stability_under_prefix_edit() {
        // Changing bytes near the start must not move boundaries far from
        // the edit (content-defined property).
        let mut data = pseudo_random(100_000, 9);
        let orig = chunk_boundaries(&data, ChunkParams::tiny());
        data[10] ^= 0xFF;
        let edited = chunk_boundaries(&data, ChunkParams::tiny());
        // All boundaries beyond the first few chunks must be identical.
        let orig_cuts: Vec<usize> = orig.iter().map(|r| r.end).filter(|&e| e > 5_000).collect();
        let edited_cuts: Vec<usize> = edited
            .iter()
            .map(|r| r.end)
            .filter(|&e| e > 5_000)
            .collect();
        assert_eq!(
            orig_cuts, edited_cuts,
            "edit rippled through all boundaries"
        );
    }

    #[test]
    fn rolling_hash_window_behaviour() {
        // Same window contents => same hash, regardless of what preceded.
        let mut h1 = RollingHash::new();
        let mut h2 = RollingHash::new();
        let tail: Vec<u8> = (0..WINDOW as u8).collect();
        for b in 0..200u8 {
            h1.push(b);
        }
        for &b in &tail {
            h1.push(b);
        }
        for b in 100..150u8 {
            h2.push(b);
        }
        for &b in &tail {
            h2.push(b);
        }
        assert_eq!(h1.value(), h2.value());
        assert!(h1.primed());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(chunk_boundaries(&[], ChunkParams::tiny()).is_empty());
        let one = chunk_boundaries(&[1, 2, 3], ChunkParams::tiny());
        assert_eq!(one, vec![0..3]);
    }
}
