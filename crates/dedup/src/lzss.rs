//! An LZSS-style compressor/decompressor.
//!
//! Stands in for the gzip compression of PARSEC dedup's *Compress* stage
//! (DESIGN.md §5): a **pure**, CPU-bound, buffer-in/buffer-out function —
//! exactly the shape of the paper's `Compress`, which is marked `pure` and
//! eventually deferred. The decompressor exists so the benchmark's output
//! archive can be fully verified against the original input.
//!
//! Format: a stream of flag-prefixed tokens. Each flag byte covers 8 tokens
//! (LSB first): bit 0 → literal byte, bit 1 → match, encoded as two bytes
//! `dddddddd dddd_llll`: 12-bit distance (1-based, up to 4096) and 4-bit
//! length (3–18 bytes).

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const WINDOW: usize = 4096;
const HASH_SIZE: usize = 1 << 13;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as usize) << 10 ^ (data[i + 1] as usize) << 5 ^ (data[i + 2] as usize);
    (h ^ (h >> 3)) & (HASH_SIZE - 1)
}

/// Compress `data`. Always succeeds; incompressible input grows by ~1/8.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Chained hash table of previous positions for 3-byte prefixes.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];

    let mut i = 0usize;
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8u8;

    let mut push_token = |out: &mut Vec<u8>, is_match: bool, bytes: &[u8]| {
        if flag_bit == 8 {
            flag_pos = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flag_pos] |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(bytes);
    };

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let mut cand = head[hash3(data, i)];
            let mut tries = 16;
            while cand != usize::MAX && tries > 0 {
                let dist = i - cand;
                if dist > WINDOW {
                    break;
                }
                let limit = MAX_MATCH.min(data.len() - i);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            let d = best_dist - 1;
            let l = best_len - MIN_MATCH;
            let b0 = (d & 0xFF) as u8;
            let b1 = (((d >> 8) as u8) << 4) | (l as u8);
            push_token(&mut out, true, &[b0, b1]);
            // Insert every covered position into the chain.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            push_token(&mut out, false, &[data[i]]);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum LzssError {
    /// The stream ended inside a token.
    Truncated,
    /// A match referred beyond the start of the output.
    BadDistance,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "compressed stream truncated"),
            LzssError::BadDistance => write!(f, "match distance exceeds output"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompress a [`compress`]-produced stream.
pub fn decompress(mut input: &[u8]) -> Result<Vec<u8>, LzssError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    while !input.is_empty() {
        let flags = input[0];
        input = &input[1..];
        for bit in 0..8 {
            if input.is_empty() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if input.len() < 2 {
                    return Err(LzssError::Truncated);
                }
                let b0 = input[0] as usize;
                let b1 = input[1] as usize;
                input = &input[2..];
                let dist = (((b1 >> 4) << 8) | b0) + 1;
                let len = (b1 & 0x0F) + MIN_MATCH;
                if dist > out.len() {
                    return Err(LzssError::BadDistance);
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                out.push(input[0]);
                input = &input[1..];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty() {
        roundtrip(b"");
        assert!(compress(b"").is_empty());
    }

    #[test]
    fn short_inputs() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"aaaa");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data = b"the quick brown fox ".repeat(500);
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "repetitive input barely compressed: {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_input_roundtrips() {
        roundtrip(&pseudo_random(100_000, 1));
    }

    #[test]
    fn long_runs_roundtrip() {
        let mut data = vec![0u8; 50_000];
        data.extend_from_slice(&pseudo_random(1000, 2));
        data.extend(vec![0xFFu8; 50_000]);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        // "aaaa..." forces distance-1 overlapping copies.
        let data = vec![b'a'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 3000);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn mixed_structured_input() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("record-{:06}|", i % 97).as_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let c = compress(&b"hello hello hello hello hello".repeat(10));
        assert!(c.len() > 3);
        let cut = &c[..c.len() - 1];
        // Either Truncated or a clean parse of fewer bytes; must not panic.
        let _ = decompress(cut);
        // A flag byte claiming a match with only 1 byte left:
        assert_eq!(decompress(&[0b0000_0001, 0x01]), Err(LzssError::Truncated));
    }

    #[test]
    fn bad_distance_is_an_error() {
        // Match token at the very start: distance necessarily exceeds the
        // (empty) output.
        assert_eq!(
            decompress(&[0b0000_0001, 0x05, 0x00]),
            Err(LzssError::BadDistance)
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let data = pseudo_random(20_000, 33);
        assert_eq!(compress(&data), compress(&data));
    }
}
