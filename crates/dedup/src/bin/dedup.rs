//! `dedup` — a command-line front end for the pipeline, making the kernel
//! usable as an actual tool (and handy for eyeballing backend behaviour on
//! real files).
//!
//! ```text
//! dedup compress <input> <archive> [--backend NAME] [--threads N]
//! dedup extract  <archive> <output>
//! dedup gen      <bytes> <output> [--dup RATIO] [--seed N]
//! ```
//!
//! Backends: pthread (default), stm, stm-defer-io, stm-defer-all, htm,
//! htm-defer-io, htm-defer-all.

use std::process::ExitCode;
use std::sync::Arc;

use ad_dedup::backend::tm::{TmBackend, TmFlavor};
use ad_dedup::backend::{Backend, BackendConfig, SinkTarget};
use ad_dedup::corpus::{generate, CorpusParams};
use ad_dedup::pipeline::{run_pipeline, PipelineConfig};
use ad_dedup::{format, LockBackend};
use ad_stm::{Runtime, TmConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dedup compress <input> <archive> [--backend NAME] [--threads N]\n  \
         dedup extract <archive> <output>\n  \
         dedup gen <bytes> <output> [--dup RATIO] [--seed N]\n\n\
         backends: pthread stm stm-defer-io stm-defer-all htm htm-defer-io htm-defer-all"
    );
    ExitCode::from(2)
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn make_backend(name: &str, cfg: BackendConfig, target: SinkTarget) -> Option<Box<dyn Backend>> {
    let tm = |cfg_tm: TmConfig, flavor: TmFlavor, cfg, target| -> Option<Box<dyn Backend>> {
        Some(Box::new(
            TmBackend::new(Runtime::new(cfg_tm), flavor, cfg, target).ok()?,
        ))
    };
    match name {
        "pthread" => Some(Box::new(LockBackend::new(cfg, target).ok()?)),
        "stm" => tm(TmConfig::stm(), TmFlavor::Baseline, cfg, target),
        "stm-defer-io" => tm(TmConfig::stm(), TmFlavor::DeferIo, cfg, target),
        "stm-defer-all" => tm(TmConfig::stm(), TmFlavor::DeferAll, cfg, target),
        "htm" => tm(TmConfig::htm(), TmFlavor::Baseline, cfg, target),
        "htm-defer-io" => tm(TmConfig::htm(), TmFlavor::DeferIo, cfg, target),
        "htm-defer-all" => tm(TmConfig::htm(), TmFlavor::DeferAll, cfg, target),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compress") if args.len() >= 3 => {
            let input = match std::fs::read(&args[1]) {
                Ok(d) => Arc::new(d),
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let backend_name = opt(&args, "--backend").unwrap_or_else(|| "pthread".into());
            let threads: usize = opt(&args, "--threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2);
            let cfg = BackendConfig {
                table_capacity: (input.len() / 4096).max(1 << 12),
                ..BackendConfig::default()
            };
            let Some(backend) =
                make_backend(&backend_name, cfg, SinkTarget::File(args[2].clone().into()))
            else {
                eprintln!("unknown backend {backend_name}");
                return usage();
            };
            let pipe = if input.len() < 2 << 20 {
                PipelineConfig::tiny(threads)
            } else {
                PipelineConfig::new(threads)
            };
            let report = run_pipeline(&input, &pipe, backend.as_ref());
            println!(
                "{}: {} -> {} bytes ({:.2}x), {} chunks ({} unique), {:.3}s [{}]",
                report.label,
                report.bytes_in,
                report.bytes_out,
                report.ratio(),
                report.total_chunks,
                report.unique_chunks,
                report.elapsed.as_secs_f64(),
                report.diagnostics
            );
            ExitCode::SUCCESS
        }
        Some("extract") if args.len() >= 3 => {
            let archive = match std::fs::read(&args[1]) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            match format::reconstruct(&archive) {
                Ok(data) => {
                    if let Err(e) = std::fs::write(&args[2], &data) {
                        eprintln!("cannot write {}: {e}", args[2]);
                        return ExitCode::FAILURE;
                    }
                    println!("extracted {} bytes", data.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("archive corrupt: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("gen") if args.len() >= 3 => {
            let Ok(size) = args[1].parse::<usize>() else {
                return usage();
            };
            let dup: f64 = opt(&args, "--dup")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.5);
            let seed: u64 = opt(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let data = generate(&CorpusParams::new(size).with_dup_ratio(dup).with_seed(seed));
            if let Err(e) = std::fs::write(&args[2], &data) {
                eprintln!("cannot write {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
            println!(
                "generated {} bytes (dup_ratio {dup}, seed {seed})",
                data.len()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
