//! The `ad-kv` network server: a pool-driven accept loop whose connection
//! handlers turn wire requests into store transactions — and whose acks
//! for mutating requests are written **only after the request's deferred
//! durability work resolved**.
//!
//! ## Threading model
//!
//! One dedicated accept thread drives [`ad_support::pool::Pool::accept_loop`]
//! over a `TcpListener`; each accepted connection becomes a pool job that
//! owns the socket until the client disconnects (thread-per-connection,
//! bounded by the worker count). Backpressure composes from two layers:
//!
//! * **Connection admission** — the accept loop's blocking submit: when
//!   every worker is busy and the queue is full, new connections wait in
//!   the kernel backlog instead of accumulating server-side state
//!   (DESIGN.md §12.3).
//! * **Durability under load** — mutating requests run through the store's
//!   deferred-executor pipeline; under `SyncPolicy::Async` a saturated
//!   defer pool degrades to inline execution on the committing thread
//!   (`try_submit` fallback, DESIGN.md §10), which here means the
//!   connection handler slows down — exactly the client that generated
//!   the load.
//!
//! ## The ack gate
//!
//! PUT/DEL/BATCH run [`KvStore::write_batch_async`]: commit returns with
//! the touched shards' `TxLock`s still held by the batch owner, and the
//! handler blocks on the returned `DeferHandle` before writing the
//! response. The response bytes therefore cannot reach the socket until
//! the redo record's covering fsync returned — "acked ⇒ durable" as a
//! *wire* property (PROTOCOL.md §6). The handler marks the moment with an
//! [`EventKind::NetAckDurable`] trace event, which `ad-kv-loadgen --smoke`
//! checks against the `wal_fsync` timeline.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ad_kv::{DeferHandle, KvStore, WriteBatch};
use ad_stm::EventKind;
use ad_support::pool::Pool;
use ad_support::sync::atomic::{AtomicBool, Ordering};
use ad_support::tsc;

use crate::frame::{Decoder, Frame, VERSION};
use crate::proto::{status, Request, Response};
use crate::stats::{NetStats, NetStatsSnapshot};

/// How long a connection handler blocks in `read` before re-checking the
/// shutdown flag. Bounds how stale a shutdown can go unnoticed; invisible
/// to clients (a timeout just loops).
const READ_TICK: Duration = Duration::from_millis(250);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler workers (= maximum concurrent connections).
    pub workers: usize,
    /// Accepted-but-unhandled connections the pool queue may hold before
    /// the accept loop itself blocks (kernel backlog takes over from
    /// there).
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
        }
    }
}

struct Inner {
    store: Arc<KvStore>,
    stats: Arc<NetStats>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running `ad-kv` server. Dropping it stops accepting, lets in-flight
/// connections wind down (handlers notice shutdown within one read tick,
/// 250 ms), and joins every thread.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `store` with `config.workers` connection handlers.
    pub fn start(
        store: Arc<KvStore>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let inner = Arc::new(Inner {
            store,
            stats: Arc::new(NetStats::default()),
            shutdown: AtomicBool::new(false),
            addr: listener.local_addr()?,
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ad-net-accept".into())
                .spawn(move || {
                    // The pool lives on the accept thread: when the loop
                    // ends (shutdown), dropping it joins the handlers.
                    let pool = Pool::new(config.workers, config.queue_cap.max(1));
                    let next_inner = Arc::clone(&inner);
                    pool.accept_loop(
                        move || loop {
                            if next_inner.shutdown.load(Ordering::Relaxed) {
                                return None;
                            }
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    next_inner.stats.on_accept();
                                    return Some(stream);
                                }
                                // Transient accept errors (EMFILE, aborted
                                // handshake) should not kill the server.
                                Err(_) => continue,
                            }
                        },
                        move |stream| handle_connection(stream, &inner),
                    );
                })?
        };
        Ok(Server {
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The served store (for tests and embedders that also hold it).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.inner.store
    }

    /// Network counters so far.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.stats.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Unblock a listener parked in accept(): one throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Serve one connection until EOF, a structural frame error, or shutdown.
fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut stream = stream;
    let mut decoder = Decoder::new();
    let mut read_buf = [0u8; 64 * 1024];
    let mut write_buf = Vec::new();

    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return, // client closed
            Ok(n) => decoder.feed(&read_buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    let t0 = tsc::now_ns();
                    let response = serve(inner, &frame);
                    if response.status() != status::OK {
                        inner.stats.on_status_error();
                    }
                    write_buf.clear();
                    Frame::new(frame.opcode, frame.req_id, response.encode_payload())
                        .encode_into(&mut write_buf);
                    // Counted before the write: once the client holds the
                    // response, the request is guaranteed visible in the
                    // counters (tests rely on this).
                    inner.stats.on_request(tsc::now_ns().saturating_sub(t0));
                    if stream.write_all(&write_buf).is_err() {
                        return; // client gone mid-response
                    }
                }
                Err(_) => {
                    // Structural error: the stream cannot be re-synced, and
                    // anything we write may land mid-frame from the
                    // client's perspective. Count it and close.
                    inner.stats.on_frame_error();
                    return;
                }
            }
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Execute one well-framed request. Mutations return only after their
/// deferred durability work resolved — see the module docs.
fn serve(inner: &Inner, frame: &Frame) -> Response {
    if frame.version != VERSION {
        return Response::Err(status::ERR_BAD_VERSION);
    }
    let request = match Request::decode(frame.opcode, &frame.payload) {
        Ok(r) => r,
        Err(code) => return Response::Err(code),
    };
    let store = &inner.store;
    match request {
        Request::Get { key } => Response::Value(store.get(&key).map(|v| v.to_vec())),
        Request::Put { key, value } => {
            ack_durable(store, frame.req_id, store.put_async(&key, &value));
            Response::Applied(1)
        }
        Request::Del { key } => {
            ack_durable(store, frame.req_id, store.delete_async(&key));
            Response::Applied(1)
        }
        Request::Batch { ops } => {
            let mut batch = WriteBatch::new();
            let count = ops.len() as u32;
            for (key, value) in ops {
                batch = match value {
                    Some(v) => batch.put(key, v),
                    None => batch.delete(key),
                };
            }
            ack_durable(store, frame.req_id, store.write_batch_async(&batch));
            Response::Applied(count)
        }
        Request::Sync => {
            store.sync();
            Response::Synced
        }
        Request::Stats => Response::Stats(format!(
            "{{\"net\":{},\"store\":{}}}",
            inner.stats.snapshot().to_json(),
            store.stats_json(),
        )),
    }
}

/// The ack gate: block until the batch's redo record is fsync-covered,
/// then mark the timeline. `None` (volatile store or empty batch) has no
/// durability to wait for.
fn ack_durable(store: &KvStore, req_id: u32, handle: Option<DeferHandle<()>>) {
    if let Some(h) = handle {
        store.wait_durable(&h);
        store
            .runtime()
            .trace_app(EventKind::NetAckDurable, u64::from(req_id));
    }
}
