//! A minimal blocking client for the `ad-kv` wire protocol.
//!
//! One request in flight at a time (the protocol allows pipelining via
//! `req_id`; this client doesn't use it — the load generator gets its
//! concurrency from connection count instead, which also matches how the
//! server allocates one worker per connection). Every method maps a
//! protocol error onto `io::ErrorKind::InvalidData` so callers can treat
//! "broken peer" and "broken pipe" uniformly.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ad_kv::WriteBatch;

use crate::frame::{Decoder, Frame, VERSION};
use crate::proto::{status, Request, Response};

/// A blocking connection to an `ad-kv-server`.
pub struct Client {
    stream: TcpStream,
    decoder: Decoder,
    read_buf: Vec<u8>,
    next_req_id: u32,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: Decoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            next_req_id: 1,
        })
    }

    /// Point lookup; `None` for an absent key.
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        match self.call(Request::Get { key: key.into() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert/overwrite one key. Returns once the server acked — which,
    /// for a durable store, means once the write is fsync-covered
    /// (PROTOCOL.md §6).
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        match self.call(Request::Put {
            key: key.into(),
            value: value.to_vec(),
        })? {
            Response::Applied(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Delete one key (acked when durable, like [`Client::put`]).
    pub fn del(&mut self, key: &str) -> io::Result<()> {
        match self.call(Request::Del { key: key.into() })? {
            Response::Applied(_) => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Apply a [`WriteBatch`] atomically; returns the op count the server
    /// applied. One ack covers the whole batch.
    pub fn batch(&mut self, batch: &WriteBatch) -> io::Result<u32> {
        match self.call(Request::from_write_batch(batch))? {
            Response::Applied(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Durability barrier: returns once every deferred durability op the
    /// server had issued before this request has completed.
    pub fn sync(&mut self) -> io::Result<()> {
        match self.call(Request::Sync)? {
            Response::Synced => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Server observability snapshot (`{"net":{..},"store":{..}}` JSON).
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Send one request and block for its response. Exposed so tests (and
    /// protocol tooling) can exercise raw requests; the typed methods
    /// above are this plus a shape check.
    pub fn call(&mut self, request: Request) -> io::Result<Response> {
        let opcode = request.opcode();
        let req_id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        let frame = Frame::new(opcode as u8, req_id, request.encode_payload());
        self.stream.write_all(&frame.encode())?;
        let reply = self.read_frame()?;
        if reply.req_id != req_id || reply.opcode != opcode as u8 || reply.version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "response envelope mismatch: sent op {} req {}, got op {} req {}",
                    opcode as u8, req_id, reply.opcode, reply.req_id
                ),
            ));
        }
        Response::decode(opcode, &reply.payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response payload"))
    }

    /// Block until one complete response frame arrives.
    fn read_frame(&mut self) -> io::Result<Frame> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            let fed = n;
            let buf = std::mem::take(&mut self.read_buf);
            self.decoder.feed(&buf[..fed]);
            self.read_buf = buf;
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    let kind = match resp {
        Response::Err(code) if *code == status::ERR_MALFORMED => io::ErrorKind::InvalidInput,
        Response::Err(_) => io::ErrorKind::Unsupported,
        _ => io::ErrorKind::InvalidData,
    };
    io::Error::new(kind, format!("unexpected response: {resp}"))
}
