//! `ad-kv-server` — serve an `ad-kv` store over TCP.
//!
//! ```text
//! cargo run --release -p ad-net --bin ad-kv-server -- \
//!     --wal /tmp/ad.wal --sync group --workers 8
//! ```
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:4790`).
//! * `--workers N` — connection-handler workers, i.e. the maximum number
//!   of concurrent connections (default 4).
//! * `--wal PATH` — write-ahead log file; without it the store is
//!   volatile (no durability, mutating requests ack immediately).
//! * `--sync group|percommit|async` — WAL sync policy when `--wal` is
//!   given (default `group`). See DESIGN.md §9.
//! * `--shards N` — store shard count (default 16).
//! * `--trace` — enable the runtime event ring (OBSERVABILITY.md); the
//!   STATS opcode then returns filled histograms.
//!
//! The wire protocol is specified in `PROTOCOL.md`; with a WAL the server
//! acks a mutating request only after its redo record is fsync-covered
//! (PROTOCOL.md §6).

use std::sync::Arc;

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_kv::{KvConfig, KvStore, SyncPolicy};
use ad_net::{Server, ServerConfig};

fn main() {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:4790".to_string());
    let workers: usize = arg_num("--workers", 4);
    let shards: usize = arg_num("--shards", 16);
    let sync = match arg_value("--sync").as_deref() {
        None | Some("group") => SyncPolicy::GroupCommit,
        Some("percommit") => SyncPolicy::PerCommit,
        Some("async") => SyncPolicy::Async,
        Some(other) => {
            eprintln!("unknown --sync {other:?} (expected group|percommit|async)");
            std::process::exit(2);
        }
    };

    let config = match arg_value("--wal") {
        Some(path) => KvConfig::durable(path, sync).with_shards(shards),
        None => KvConfig::volatile().with_shards(shards),
    };
    let durable = !matches!(config.durability, ad_kv::Durability::Volatile);
    let store = Arc::new(KvStore::open(config).unwrap_or_else(|e| {
        eprintln!("opening store: {e}");
        std::process::exit(1);
    }));
    if let Some(report) = store.recovery_report() {
        println!(
            "recovered {} records (last seq {})",
            report.records, report.last_seq
        );
    }
    if arg_flag("--trace") {
        store.runtime().set_tracing(true);
    }

    let server = Server::start(
        store,
        addr.as_str(),
        ServerConfig {
            workers: workers.max(1),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("binding {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "ad-kv-server listening on {} ({} workers, {})",
        server.local_addr(),
        workers.max(1),
        if durable {
            "durable: ack implies fsynced"
        } else {
            "volatile"
        }
    );

    // Serve until killed. The accept loop and handlers run on their own
    // threads; parking the main thread keeps the process alive without
    // spinning.
    loop {
        std::thread::park();
    }
}
