//! `ad-kv-loadgen` — drive an `ad-kv-server` and measure what "acked ⇒
//! durable" costs end to end.
//!
//! ```text
//! cargo run --release -p ad-net --bin ad-kv-loadgen                  # full grid
//! cargo run --release -p ad-net --bin ad-kv-loadgen -- --smoke      # CI: quick + asserts
//! ```
//!
//! By default each cell spins up an in-process loopback server over a
//! fresh durable store (WAL in the system temp dir) and drives it with N
//! client connections, one thread per connection — matching how the
//! server allocates one pool worker per connection. Keys are drawn
//! zipf(θ=0.99) from a 10 k keyspace (YCSB-style skew); the read/write
//! mix and connection count vary per cell. Request latency is measured
//! client-side around the blocking call, so for mutating requests it
//! includes the server's deferred-fsync wait — the wire-level price of
//! the durability contract (PROTOCOL.md §6).
//!
//! Warm-up (¼ of `--ms`, at least 50 ms) is excluded: client latencies
//! are recorded only after the warm-up deadline, and server-side STM
//! counters for the steady window come from `StatsReport::delta`.
//!
//! Flags:
//!
//! * `--ms N` — steady-state milliseconds per cell (default 200).
//! * `--addr HOST:PORT` — drive an external server instead of loopback
//!   (the keyspace is preloaded over the wire; server-side counters are
//!   omitted from the report).
//! * `--sync group|percommit|async` — loopback WAL policy (default
//!   `group`).
//! * `--out PATH` — result file (default `BENCH_kv_net.json`).
//! * `--dir PATH` — where loopback WAL files go (default: temp dir).
//! * `--smoke` — fixed-op loopback run with tracing on and correctness
//!   asserts: every connection commits at least one multi-op BATCH, all
//!   responses round-trip, and — the wire-level durability claim — every
//!   `ack_after_durable` trace event is preceded on its thread by the
//!   `wal_append` it gates on. `--async` runs the same smoke under
//!   `SyncPolicy::Async` (ordering check skipped: appends run on pool
//!   workers there).
//!
//! Caveat (EXPERIMENTS.md): in a 1-core container the client threads,
//! connection handlers, and WAL fsyncs all time-share one CPU, so
//! absolute throughput is not meaningful — the numbers are for comparing
//! cells within one run on one machine.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_kv::{KvConfig, KvStore, SyncPolicy, WriteBatch};
use ad_net::{Client, Server, ServerConfig};
use ad_stm::EventKind;
use ad_support::hist::Histogram;
use ad_support::prng::Rng;
use ad_support::sync::atomic::{AtomicBool, Ordering};
use ad_support::tsc;

const KEYSPACE: usize = 10_000;
const VALUE_LEN: usize = 100;
const ZIPF_THETA: f64 = 0.99;
const CONNECTION_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    /// 5% writes — the serving-tier shape.
    ReadMostly,
    /// 50% writes — every other request pays the durability wait.
    UpdateHeavy,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::ReadMostly => "read_mostly",
            Mix::UpdateHeavy => "update_heavy",
        }
    }

    fn write_fraction(self) -> f64 {
        match self {
            Mix::ReadMostly => 0.05,
            Mix::UpdateHeavy => 0.50,
        }
    }
}

/// YCSB-style zipf sampler: item 0 is the hottest, `eta`/`zetan` are the
/// usual precomputed constants so sampling is O(1).
#[derive(Clone, Copy)]
struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.n - 1)
    }
}

fn key(i: usize) -> String {
    format!("key{i:06}")
}

/// Preload every key directly on the store (loopback cells own it), in
/// 1000-op batches so group commit amortizes the fsyncs.
fn preload(store: &KvStore) {
    let value = vec![b'0'; VALUE_LEN];
    let mut i = 0;
    while i < KEYSPACE {
        let mut batch = WriteBatch::new();
        for k in i..(i + 1000).min(KEYSPACE) {
            batch = batch.put(key(k), value.clone());
        }
        store.write_batch(&batch);
        i += 1000;
    }
}

/// Preload over the wire (external servers), in 500-op BATCH frames.
fn preload_remote(addr: &str) {
    let mut client = Client::connect(addr).expect("connecting for preload");
    let value = vec![b'0'; VALUE_LEN];
    let mut i = 0;
    while i < KEYSPACE {
        let mut batch = WriteBatch::new();
        for k in i..(i + 500).min(KEYSPACE) {
            batch = batch.put(key(k), value.clone());
        }
        client.batch(&batch).expect("preload batch");
        i += 500;
    }
}

/// One connection's worth of load: returns ops completed after warm-up.
#[allow(clippy::too_many_arguments)]
fn drive(
    addr: &str,
    mix: Mix,
    seed: u64,
    zipf: Zipf,
    recording: &AtomicBool,
    stop: &AtomicBool,
    hist: &Histogram,
) -> u64 {
    let mut client = Client::connect(addr).expect("connecting");
    let mut rng = Rng::seed_from_u64(seed);
    let value = vec![(seed & 0x7f) as u8 | 0x20; VALUE_LEN];
    let mut steady_ops = 0u64;
    let mut writes = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let k = key(zipf.sample(&mut rng));
        let t0 = tsc::now_ns();
        if rng.random_bool(mix.write_fraction()) {
            writes += 1;
            if writes.is_multiple_of(7) {
                // Multi-op BATCH frame: one ack covers three keys.
                let batch = WriteBatch::new()
                    .put(k, value.clone())
                    .put(key(zipf.sample(&mut rng)), value.clone())
                    .delete(key(zipf.sample(&mut rng)));
                client.batch(&batch).expect("batch");
            } else if writes.is_multiple_of(13) {
                client.del(&k).expect("del");
            } else {
                client.put(&k, &value).expect("put");
            }
        } else {
            client.get(&k).expect("get");
        }
        let dt = tsc::now_ns().saturating_sub(t0);
        if recording.load(Ordering::Relaxed) {
            hist.record(dt);
            steady_ops += 1;
        }
    }
    steady_ops
}

struct Row {
    mix: Mix,
    connections: usize,
    ops_per_sec: f64,
    req_p50_ns: u64,
    req_p99_ns: u64,
    req_max_ns: u64,
    steady_commits: u64,
}

fn run_cell(
    addr: &str,
    mix: Mix,
    connections: usize,
    warm: Duration,
    steady: Duration,
    store: Option<&Arc<KvStore>>,
) -> Row {
    let zipf = Zipf::new(KEYSPACE, ZIPF_THETA);
    let recording = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let hist = Arc::new(Histogram::new());
    let joins: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.to_string();
            let recording = Arc::clone(&recording);
            let stop = Arc::clone(&stop);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                drive(
                    &addr,
                    mix,
                    0x5eed_0000 + c as u64,
                    zipf,
                    &recording,
                    &stop,
                    &hist,
                )
            })
        })
        .collect();

    std::thread::sleep(warm);
    let warm_stats = store.map(|s| s.runtime().snapshot_stats());
    let t0 = Instant::now();
    recording.store(true, Ordering::Relaxed);
    std::thread::sleep(steady);
    stop.store(true, Ordering::Relaxed);
    let steady_elapsed = t0.elapsed();
    let total: u64 = joins.into_iter().map(|j| j.join().expect("driver")).sum();
    let steady_commits = match (store, warm_stats) {
        (Some(s), Some(earlier)) => {
            s.runtime()
                .snapshot_stats()
                .delta(&earlier)
                .counters
                .commits
        }
        _ => 0,
    };

    let snap = hist.snapshot();
    Row {
        mix,
        connections,
        ops_per_sec: total as f64 / steady_elapsed.as_secs_f64(),
        req_p50_ns: snap.quantile(0.50),
        req_p99_ns: snap.quantile(0.99),
        req_max_ns: snap.max(),
        steady_commits,
    }
}

/// Fixed-op loopback run with tracing on; asserts the wire-level
/// durability story end to end. See the module docs for what is checked.
fn smoke(dir: &Path, use_async: bool) {
    const CONNS: usize = 2;
    const PUTS: usize = 10;
    let path = dir.join(if use_async {
        "kv-net-smoke-async.wal"
    } else {
        "kv-net-smoke.wal"
    });
    let _ = std::fs::remove_file(&path);
    let sync = if use_async {
        SyncPolicy::Async
    } else {
        SyncPolicy::GroupCommit
    };
    let store =
        Arc::new(KvStore::open(KvConfig::durable(&path, sync)).expect("opening smoke store"));
    store.runtime().set_tracing(true);
    let server = Server::start(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig {
            workers: CONNS,
            ..ServerConfig::default()
        },
    )
    .expect("starting smoke server");
    let addr = server.local_addr();

    let joins: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connecting");
                for i in 0..PUTS {
                    client
                        .put(&format!("smoke-{c}-{i}"), format!("v{c}-{i}").as_bytes())
                        .expect("put");
                }
                // Read-your-writes over the wire.
                for i in (0..PUTS).step_by(4) {
                    let got = client.get(&format!("smoke-{c}-{i}")).expect("get");
                    assert_eq!(
                        got.as_deref(),
                        Some(format!("v{c}-{i}").as_bytes()),
                        "read-your-writes violated for smoke-{c}-{i}"
                    );
                }
                // At least one committed multi-op batch per connection.
                let batch = WriteBatch::new()
                    .put(format!("batch-{c}-a"), &b"1"[..])
                    .put(format!("batch-{c}-b"), &b"2"[..])
                    .delete(format!("smoke-{c}-0"));
                assert_eq!(
                    client.batch(&batch).expect("batch"),
                    3,
                    "batch on connection {c} not fully applied"
                );
                client.del(&format!("smoke-{c}-1")).expect("del");
                client.sync().expect("sync");
                let stats = client.stats().expect("stats");
                assert!(
                    stats.contains("\"net_requests\""),
                    "stats missing net counters"
                );
                assert_eq!(
                    stats.matches('{').count(),
                    stats.matches('}').count(),
                    "unbalanced stats JSON: {stats}"
                );
            })
        })
        .collect();
    for j in joins {
        j.join().expect("smoke connection");
    }

    // Request accounting: PUTS puts + 3 gets + batch + del + sync + stats.
    let per_conn = (PUTS + 3 + 4) as u64;
    let snap = server.stats();
    assert_eq!(snap.net_requests, per_conn * CONNS as u64, "request count");
    assert_eq!(snap.net_frame_errors, 0, "structural errors in smoke");
    assert_eq!(snap.net_status_errors, 0, "status errors in smoke");
    assert!(snap.net_accepts >= CONNS as u64, "accept count");
    drop(server);

    // Durable-ack ordering: every ack_after_durable must be preceded (on
    // its own thread, in seq order) by the wal_append it gates on. Under
    // Async the append runs on a defer-pool worker, so only the global
    // record count is checked there.
    let trace = store.runtime().take_trace();
    let acks: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::NetAckDurable)
        .collect();
    let expected_acks = (CONNS * (PUTS + 2)) as u64; // puts + batch + del
    assert_eq!(acks.len() as u64, expected_acks, "ack_after_durable count");
    if !use_async && trace.dropped == 0 {
        let threads: std::collections::BTreeSet<u32> = acks.iter().map(|e| e.thread).collect();
        for t in threads {
            let (mut appends, mut acks_seen) = (0u64, 0u64);
            for e in trace.thread_events(t) {
                match e.kind {
                    EventKind::WalAppend => appends += 1,
                    EventKind::NetAckDurable => {
                        acks_seen += 1;
                        assert!(
                            appends >= acks_seen,
                            "ack #{acks_seen} on thread {t} not preceded by its wal_append"
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    let wal = store.wal_stats().expect("durable smoke store has a WAL");
    assert!(
        wal.records >= expected_acks,
        "fewer WAL records ({}) than durable acks ({expected_acks})",
        wal.records
    );

    println!(
        "smoke ok ({}): {} requests over {CONNS} connections, {} durable acks, \
         {} WAL records in {} fsync batches{}",
        if use_async { "async" } else { "group" },
        snap.net_requests,
        expected_acks,
        wal.records,
        wal.batches,
        if trace.dropped > 0 {
            " (trace ring wrapped; ordering check skipped)"
        } else {
            ""
        },
    );
    drop(store);
    let _ = std::fs::remove_file(&path);
}

fn main() {
    let ms: u64 = arg_num("--ms", 200);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_kv_net.json".to_string());
    let dir = arg_value("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("creating WAL dir");
    let sync = match arg_value("--sync").as_deref() {
        None | Some("group") => SyncPolicy::GroupCommit,
        Some("percommit") => SyncPolicy::PerCommit,
        Some("async") => SyncPolicy::Async,
        Some(other) => {
            eprintln!("unknown --sync {other:?} (expected group|percommit|async)");
            std::process::exit(2);
        }
    };

    if arg_flag("--smoke") {
        smoke(&dir, arg_flag("--async"));
        return;
    }

    let steady = Duration::from_millis(ms);
    let warm = Duration::from_millis((ms / 4).max(50));
    let external = arg_value("--addr");
    if let Some(addr) = &external {
        preload_remote(addr);
    }

    let mut rows: Vec<Row> = Vec::new();
    for mix in [Mix::ReadMostly, Mix::UpdateHeavy] {
        for &connections in &CONNECTION_COUNTS {
            let row = match &external {
                Some(addr) => run_cell(addr, mix, connections, warm, steady, None),
                None => {
                    let path = dir.join(format!("kv-net-{}-{connections}.wal", mix.name()));
                    let _ = std::fs::remove_file(&path);
                    let store = Arc::new(
                        KvStore::open(KvConfig::durable(&path, sync)).expect("opening store"),
                    );
                    preload(&store);
                    let server = Server::start(
                        Arc::clone(&store),
                        "127.0.0.1:0",
                        ServerConfig {
                            workers: connections,
                            ..ServerConfig::default()
                        },
                    )
                    .expect("starting server");
                    let addr = server.local_addr().to_string();
                    let row = run_cell(&addr, mix, connections, warm, steady, Some(&store));
                    drop(server);
                    drop(store);
                    let _ = std::fs::remove_file(&path);
                    row
                }
            };
            println!(
                "{:<12} connections={connections}  {:>10.0} req/s  p50={} ns  p99={} ns",
                row.mix.name(),
                row.ops_per_sec,
                row.req_p50_ns,
                row.req_p99_ns,
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n  \"bench\": \"kv_net\",\n");
    json.push_str(&format!("  \"duration_ms_per_cell\": {ms},\n"));
    json.push_str(&format!("  \"keyspace\": {KEYSPACE},\n"));
    json.push_str(&format!("  \"value_len\": {VALUE_LEN},\n"));
    json.push_str(&format!("  \"zipf_theta\": {ZIPF_THETA},\n"));
    json.push_str(&format!(
        "  \"sync\": \"{}\",\n",
        match (&external, sync) {
            (Some(_), _) => "external",
            (None, SyncPolicy::GroupCommit) => "group",
            (None, SyncPolicy::PerCommit) => "percommit",
            (None, SyncPolicy::Async) => "async",
        }
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mix\": \"{}\", \"connections\": {}, \"ops_per_sec\": {:.0}, \
             \"req_p50_ns\": {}, \"req_p99_ns\": {}, \"req_max_ns\": {}, \
             \"steady_commits\": {}}}{}\n",
            r.mix.name(),
            r.connections,
            r.ops_per_sec,
            r.req_p50_ns,
            r.req_p99_ns,
            r.req_max_ns,
            r.steady_commits,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
