//! Request/response semantics on top of the frame envelope.
//!
//! Implements PROTOCOL.md §4–§5: the opcode table, payload encodings, and
//! status codes. The split from [`crate::frame`] is deliberate — a frame
//! that parses but carries an unknown opcode, an unsupported version, or a
//! malformed payload still has a trustworthy envelope, so the server
//! answers it with a status-error response *on the same connection*
//! instead of closing (only [`crate::frame::FrameError`]s are fatal).
//!
//! Payload primitives: keys are `u16 LE length + UTF-8 bytes`, values are
//! `u32 LE length + bytes`, counts are `u32 LE`. Response payloads always
//! begin with one status byte ([`status`]); the rest of the payload is
//! present only when the status is [`status::OK`].

use std::fmt;

use ad_kv::WriteBatch;

/// Request opcodes the server implements. The discriminants are wire-stable
/// (PROTOCOL.md §4 — `tests/codec.rs` asserts the doc's table matches this
/// enum); new opcodes append, existing ones never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Point lookup; response carries the value if the key is present.
    Get = 1,
    /// Insert/overwrite one key; acked only once durable (PROTOCOL.md §6).
    Put = 2,
    /// Delete one key; acked only once durable.
    Del = 3,
    /// Atomic multi-key batch of puts/deletes; one ack for the whole batch,
    /// emitted only once the batch's single redo record is durable.
    Batch = 4,
    /// Durability barrier: acked once every deferred durability operation
    /// issued before it has completed (`KvStore::sync`).
    Sync = 5,
    /// Server observability snapshot: net + store counters as JSON.
    Stats = 6,
}

impl Opcode {
    /// Every opcode, in wire order — the table the protocol doc must cover.
    pub const ALL: [Opcode; 6] = [
        Opcode::Get,
        Opcode::Put,
        Opcode::Del,
        Opcode::Batch,
        Opcode::Sync,
        Opcode::Stats,
    ];

    /// Stable uppercase wire name (as it appears in PROTOCOL.md §4).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Get => "GET",
            Opcode::Put => "PUT",
            Opcode::Del => "DEL",
            Opcode::Batch => "BATCH",
            Opcode::Sync => "SYNC",
            Opcode::Stats => "STATS",
        }
    }

    /// Decode an opcode byte.
    pub fn from_code(code: u8) -> Option<Opcode> {
        Some(match code {
            1 => Opcode::Get,
            2 => Opcode::Put,
            3 => Opcode::Del,
            4 => Opcode::Batch,
            5 => Opcode::Sync,
            6 => Opcode::Stats,
            _ => return None,
        })
    }
}

/// Response status codes (first payload byte of every response,
/// PROTOCOL.md §5). `0` is success; everything else is a semantic error
/// that leaves the connection usable.
pub mod status {
    /// Request succeeded; opcode-specific body follows.
    pub const OK: u8 = 0;
    /// The payload did not parse under the opcode's schema.
    pub const ERR_MALFORMED: u8 = 1;
    /// The opcode byte is not in the server's table.
    pub const ERR_UNKNOWN_OPCODE: u8 = 2;
    /// The frame's version byte is not supported by this server.
    pub const ERR_BAD_VERSION: u8 = 3;

    /// Stable lowercase name for a status code.
    pub fn name(code: u8) -> &'static str {
        match code {
            OK => "ok",
            ERR_MALFORMED => "err_malformed",
            ERR_UNKNOWN_OPCODE => "err_unknown_opcode",
            ERR_BAD_VERSION => "err_bad_version",
            _ => "err_unknown",
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET key`.
    Get {
        /// Key to look up.
        key: String,
    },
    /// `PUT key value`.
    Put {
        /// Key to insert or overwrite.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `DEL key`.
    Del {
        /// Key to delete.
        key: String,
    },
    /// `BATCH ops` — applied (and made durable) atomically.
    Batch {
        /// `(key, Some(value))` puts and `(key, None)` deletes, in order.
        ops: Vec<(String, Option<Vec<u8>>)>,
    },
    /// `SYNC` durability barrier.
    Sync,
    /// `STATS` snapshot.
    Stats,
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Get { .. } => Opcode::Get,
            Request::Put { .. } => Opcode::Put,
            Request::Del { .. } => Opcode::Del,
            Request::Batch { .. } => Opcode::Batch,
            Request::Sync => Opcode::Sync,
            Request::Stats => Opcode::Stats,
        }
    }

    /// A BATCH request from an [`ad_kv::WriteBatch`] (the connection-facing
    /// batch API: clients build batches with the store's own builder).
    pub fn from_write_batch(batch: &WriteBatch) -> Request {
        Request::Batch {
            ops: batch
                .ops()
                .map(|(k, v)| (k.to_string(), v.map(<[u8]>::to_vec)))
                .collect(),
        }
    }

    /// Encode the opcode-specific payload (PROTOCOL.md §5).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Get { key } | Request::Del { key } => put_key(&mut out, key),
            Request::Put { key, value } => {
                put_key(&mut out, key);
                put_value(&mut out, value);
            }
            Request::Batch { ops } => {
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for (key, value) in ops {
                    out.push(if value.is_some() { 0 } else { 1 });
                    put_key(&mut out, key);
                    if let Some(v) = value {
                        put_value(&mut out, v);
                    }
                }
            }
            Request::Sync | Request::Stats => {}
        }
        out
    }

    /// Decode a request from its opcode byte and payload. `Err` carries the
    /// status code to answer with ([`status::ERR_UNKNOWN_OPCODE`] or
    /// [`status::ERR_MALFORMED`]).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, u8> {
        let opcode = Opcode::from_code(opcode).ok_or(status::ERR_UNKNOWN_OPCODE)?;
        let mut cur = Cursor {
            buf: payload,
            at: 0,
        };
        let req = match opcode {
            Opcode::Get => Request::Get { key: cur.key()? },
            Opcode::Put => Request::Put {
                key: cur.key()?,
                value: cur.value()?,
            },
            Opcode::Del => Request::Del { key: cur.key()? },
            Opcode::Batch => {
                let count = cur.u32()?;
                // Each op is at least 1 (tag) + 2 (key len) bytes; a count
                // the remaining bytes cannot possibly hold is malformed,
                // not a cue to pre-allocate.
                if count as usize > cur.remaining() {
                    return Err(status::ERR_MALFORMED);
                }
                let mut ops = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let tag = cur.u8()?;
                    let key = cur.key()?;
                    let value = match tag {
                        0 => Some(cur.value()?),
                        1 => None,
                        _ => return Err(status::ERR_MALFORMED),
                    };
                    ops.push((key, value));
                }
                Request::Batch { ops }
            }
            Opcode::Sync => Request::Sync,
            Opcode::Stats => Request::Stats,
        };
        if cur.remaining() > 0 {
            // Trailing garbage would silently change meaning in a future
            // version; v1 rejects it (PROTOCOL.md §4 compat rules).
            return Err(status::ERR_MALFORMED);
        }
        Ok(req)
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result: the value, or `None` for an absent key (both are
    /// [`status::OK`] — absence is an answer, not an error).
    Value(Option<Vec<u8>>),
    /// PUT/DEL/BATCH result: number of operations applied, acked only
    /// after the batch is durable (per the store's sync policy —
    /// PROTOCOL.md §6).
    Applied(u32),
    /// SYNC result: the barrier completed.
    Synced,
    /// STATS result: one JSON object (`{"net":{..},"store":{..}}`).
    Stats(String),
    /// A semantic error ([`status`] code != OK). The connection remains
    /// usable.
    Err(u8),
}

impl Response {
    /// The status byte this response carries.
    pub fn status(&self) -> u8 {
        match self {
            Response::Err(code) => *code,
            _ => status::OK,
        }
    }

    /// Encode the response payload (status byte first, PROTOCOL.md §5).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = vec![self.status()];
        match self {
            Response::Value(None) => out.push(0),
            Response::Value(Some(v)) => {
                out.push(1);
                put_value(&mut out, v);
            }
            Response::Applied(n) => out.extend_from_slice(&n.to_le_bytes()),
            Response::Synced | Response::Err(_) => {}
            Response::Stats(json) => put_value(&mut out, json.as_bytes()),
        }
        out
    }

    /// Decode a response payload in the context of the request's opcode.
    /// `None` means the payload violates the schema (a broken peer —
    /// clients surface it as an I/O error and close).
    pub fn decode(opcode: Opcode, payload: &[u8]) -> Option<Response> {
        let mut cur = Cursor {
            buf: payload,
            at: 0,
        };
        let code = cur.u8().ok()?;
        if code != status::OK {
            return Some(Response::Err(code));
        }
        let resp = match opcode {
            Opcode::Get => match cur.u8().ok()? {
                0 => Response::Value(None),
                1 => Response::Value(Some(cur.value().ok()?)),
                _ => return None,
            },
            Opcode::Put | Opcode::Del | Opcode::Batch => Response::Applied(cur.u32().ok()?),
            Opcode::Sync => Response::Synced,
            Opcode::Stats => {
                let bytes = cur.value().ok()?;
                Response::Stats(String::from_utf8(bytes).ok()?)
            }
        };
        if cur.remaining() > 0 {
            return None;
        }
        Some(resp)
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Value(None) => write!(f, "(nil)"),
            Response::Value(Some(v)) => write!(f, "{} value bytes", v.len()),
            Response::Applied(n) => write!(f, "applied {n}"),
            Response::Synced => write!(f, "synced"),
            Response::Stats(j) => write!(f, "stats ({} bytes)", j.len()),
            Response::Err(code) => write!(f, "error: {}", status::name(*code)),
        }
    }
}

fn put_key(out: &mut Vec<u8>, key: &str) {
    let bytes = key.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "key too long for wire");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_value(out: &mut Vec<u8>, value: &[u8]) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// Bounds-checked little-endian reader over a payload slice. Every method
/// returns [`status::ERR_MALFORMED`] on underrun, so `?` threads the error
/// code straight to the response.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&[u8], u8> {
        if self.remaining() < n {
            return Err(status::ERR_MALFORMED);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, u8> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, u8> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<String, u8> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| status::ERR_MALFORMED)
    }

    fn value(&mut self) -> Result<Vec<u8>, u8> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        let payload = req.encode_payload();
        let got = Request::decode(req.opcode() as u8, &payload).unwrap();
        assert_eq!(got, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(Request::Get { key: "k".into() });
        roundtrip(Request::Put {
            key: "key".into(),
            value: b"value".to_vec(),
        });
        roundtrip(Request::Del { key: "".into() });
        roundtrip(Request::Batch {
            ops: vec![
                ("a".into(), Some(b"1".to_vec())),
                ("b".into(), None),
                ("c".into(), Some(Vec::new())),
            ],
        });
        roundtrip(Request::Sync);
        roundtrip(Request::Stats);
    }

    #[test]
    fn from_write_batch_preserves_order_and_kinds() {
        let wb = WriteBatch::new().put("x", b"1").delete("y").put("z", b"2");
        let req = Request::from_write_batch(&wb);
        assert_eq!(
            req,
            Request::Batch {
                ops: vec![
                    ("x".into(), Some(b"1".to_vec())),
                    ("y".into(), None),
                    ("z".into(), Some(b"2".to_vec())),
                ]
            }
        );
    }

    #[test]
    fn response_roundtrips() {
        for (op, resp) in [
            (Opcode::Get, Response::Value(None)),
            (Opcode::Get, Response::Value(Some(b"v".to_vec()))),
            (Opcode::Put, Response::Applied(1)),
            (Opcode::Batch, Response::Applied(42)),
            (Opcode::Sync, Response::Synced),
            (Opcode::Stats, Response::Stats("{\"net\":{}}".into())),
            (Opcode::Get, Response::Err(status::ERR_MALFORMED)),
        ] {
            let payload = resp.encode_payload();
            assert_eq!(Response::decode(op, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_opcode_and_malformed_payloads_map_to_status_codes() {
        assert_eq!(Request::decode(0, &[]), Err(status::ERR_UNKNOWN_OPCODE));
        assert_eq!(Request::decode(200, &[]), Err(status::ERR_UNKNOWN_OPCODE));
        // GET with a truncated key.
        assert_eq!(
            Request::decode(1, &[5, 0, b'a']),
            Err(status::ERR_MALFORMED)
        );
        // PUT missing its value.
        assert_eq!(
            Request::decode(2, &[1, 0, b'k']),
            Err(status::ERR_MALFORMED)
        );
        // BATCH with an op tag that doesn't exist.
        let mut p = 1u32.to_le_bytes().to_vec();
        p.push(7);
        p.extend_from_slice(&[1, 0, b'k']);
        assert_eq!(Request::decode(4, &p), Err(status::ERR_MALFORMED));
        // BATCH whose count can't fit in the remaining bytes.
        let p = u32::MAX.to_le_bytes().to_vec();
        assert_eq!(Request::decode(4, &p), Err(status::ERR_MALFORMED));
        // Trailing garbage after a well-formed body.
        let mut p = Request::Get { key: "k".into() }.encode_payload();
        p.push(0);
        assert_eq!(Request::decode(1, &p), Err(status::ERR_MALFORMED));
        // Non-UTF-8 key bytes.
        assert_eq!(
            Request::decode(1, &[2, 0, 0xFF, 0xFE]),
            Err(status::ERR_MALFORMED)
        );
    }

    #[test]
    fn sync_and_stats_reject_nonempty_payloads() {
        assert_eq!(Request::decode(5, &[0]), Err(status::ERR_MALFORMED));
        assert_eq!(Request::decode(6, &[1, 2]), Err(status::ERR_MALFORMED));
    }

    #[test]
    fn opcode_table_is_wire_stable() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op as u8), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(Opcode::from_code(0), None);
        assert_eq!(Opcode::from_code(7), None);
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(status::name(status::OK), "ok");
        assert_eq!(status::name(status::ERR_MALFORMED), "err_malformed");
        assert_eq!(
            status::name(status::ERR_UNKNOWN_OPCODE),
            "err_unknown_opcode"
        );
        assert_eq!(status::name(status::ERR_BAD_VERSION), "err_bad_version");
        assert_eq!(status::name(99), "err_unknown");
    }
}
