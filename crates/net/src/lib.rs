//! # ad-net — the network front door for `ad-kv`
//!
//! The store's "ack ⇒ durable" contract (DESIGN.md §9), extended across a
//! socket: a TCP server whose response to a mutating request is written
//! only after that request's deferred WAL fsync resolved, while the
//! touched shards' `TxLock`s are still held by the batch owner. Between
//! commit and ack no other transaction — local or arriving over another
//! connection — can observe the not-yet-durable state, so the wire
//! protocol inherits the paper's 2PL argument unchanged (DESIGN.md §12).
//!
//! The wire format is specified normatively in `PROTOCOL.md` at the repo
//! root; [`frame`] implements the envelope (length-prefixed, CRC-32
//! guarded), [`proto`] the opcode semantics (GET / PUT / DEL / BATCH /
//! SYNC / STATS). [`server`] and [`client`] are the two endpoints, and
//! [`stats`] the server's observability counters (OBSERVABILITY.md
//! "Network counters").
//!
//! Two binaries ship with the crate:
//!
//! * `ad-kv-server` — serve a store over TCP (`--addr`, `--workers`,
//!   `--wal`, `--sync`);
//! * `ad-kv-loadgen` — drive a server (loopback by default) with
//!   configurable connections / key skew / mix and emit
//!   `BENCH_kv_net.json` (README "Serving the KV store").
//!
//! ## Example (loopback)
//!
//! ```
//! use std::sync::Arc;
//! use ad_kv::{KvConfig, KvStore};
//! use ad_net::{Client, Server, ServerConfig};
//!
//! let store = Arc::new(KvStore::open(KvConfig::volatile()).unwrap());
//! let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.put("k", b"v").unwrap();
//! assert_eq!(client.get("k").unwrap().as_deref(), Some(&b"v"[..]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod stats;

pub use client::Client;
pub use frame::{Decoder, Frame, FrameError, MAX_FRAME_LEN, VERSION};
pub use proto::{Opcode, Request, Response};
pub use server::{Server, ServerConfig};
pub use stats::{NetStats, NetStatsSnapshot};
