//! Server-side network counters and the request-latency histogram.
//!
//! These extend the observability schema (OBSERVABILITY.md "Network
//! counters") one layer above the STM/KV stats: `net_requests` counts wire
//! requests, `req_latency_ns` measures frame-decoded → response-written —
//! for a durable write that includes the deferred fsync wait, so the
//! histogram's tail is the end-to-end price of "acked ⇒ durable".

use ad_support::hist::{Histogram, HistogramSnapshot};
use ad_support::sync::atomic::{AtomicU64, Ordering};

/// Live counters, updated by the accept loop and connection handlers.
/// All updates are relaxed: diagnostics, not synchronization.
#[derive(Default)]
pub struct NetStats {
    accepts: AtomicU64,
    requests: AtomicU64,
    frame_errors: AtomicU64,
    status_errors: AtomicU64,
    req_latency: Histogram,
}

impl NetStats {
    pub(crate) fn on_accept(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_request(&self, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.req_latency.record(latency_ns);
    }

    pub(crate) fn on_frame_error(&self) {
        self.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_status_error(&self) {
        self.status_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters and histogram out.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            net_accepts: self.accepts.load(Ordering::Relaxed),
            net_requests: self.requests.load(Ordering::Relaxed),
            net_frame_errors: self.frame_errors.load(Ordering::Relaxed),
            net_status_errors: self.status_errors.load(Ordering::Relaxed),
            req_latency_ns: self.req_latency.snapshot(),
        }
    }
}

/// An immutable copy of a server's network counters. Field names are the
/// stable observability schema (same names in JSON and OBSERVABILITY.md).
#[derive(Debug, Clone, Default)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub net_accepts: u64,
    /// Requests served (any status).
    pub net_requests: u64,
    /// Connections dropped for structural frame errors (bad CRC, oversize
    /// length, reserved flags) — each also closed a connection.
    pub net_frame_errors: u64,
    /// Semantic errors answered with a non-OK status (connection kept).
    pub net_status_errors: u64,
    /// Request latency: frame decoded → response encoded, ns. For durable
    /// writes this includes the deferred-fsync wait the ack gates on (the
    /// socket write itself is excluded — see `server`).
    pub req_latency_ns: HistogramSnapshot,
}

impl NetStatsSnapshot {
    /// Stable-schema JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"net_accepts\":{},\"net_requests\":{},\"net_frame_errors\":{},\
             \"net_status_errors\":{},\"req_latency_ns\":{}}}",
            self.net_accepts,
            self.net_requests,
            self.net_frame_errors,
            self.net_status_errors,
            self.req_latency_ns.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_serialize() {
        let s = NetStats::default();
        s.on_accept();
        s.on_request(1_000);
        s.on_request(2_000);
        s.on_frame_error();
        s.on_status_error();
        let snap = s.snapshot();
        assert_eq!(snap.net_accepts, 1);
        assert_eq!(snap.net_requests, 2);
        assert_eq!(snap.net_frame_errors, 1);
        assert_eq!(snap.net_status_errors, 1);
        assert_eq!(snap.req_latency_ns.count(), 2);
        let j = snap.to_json();
        for key in [
            "\"net_accepts\":1",
            "\"net_requests\":2",
            "\"net_frame_errors\":1",
            "\"net_status_errors\":1",
            "\"req_latency_ns\":{",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
