//! The frame codec: length-prefixed, CRC-guarded envelopes.
//!
//! This module implements PROTOCOL.md §2–§3 (the normative spec — keep the
//! two in sync; `tests/codec.rs` cross-checks the opcode table). A frame on
//! the wire is:
//!
//! ```text
//! offset  size      field
//! 0       4         len      u32 LE — bytes that follow this prefix
//! 4       1         ver      protocol version (1)
//! 5       1         opcode   see [`crate::proto::Opcode`]
//! 6       2         flags    reserved, must be zero in version 1
//! 8       4         req_id   u32 LE, echoed verbatim in the response
//! 12      len-12    payload  opcode-specific (PROTOCOL.md §5)
//! 4+len-4 4         crc      u32 LE CRC-32 over bytes [4, 4+len-4)
//! ```
//!
//! The codec validates *structure* — length bounds, reserved flags, the
//! checksum — and leaves *semantics* (version, opcode, payload shape) to
//! [`crate::proto`]: a structurally broken stream cannot be re-synchronized
//! (the next length prefix is untrusted), so every [`FrameError`] is
//! connection-fatal, while a semantically bad frame still has a trustworthy
//! envelope to carry an error response back in.
//!
//! [`Decoder`] is incremental: feed it whatever the socket returned —
//! including single bytes — and pop complete frames as they materialize.
//! `tests/codec.rs` replays a valid stream split at every byte boundary to
//! pin that property.

use std::fmt;

use ad_support::crc32::crc32;

/// The protocol version this build speaks (PROTOCOL.md §4).
pub const VERSION: u8 = 1;

/// Bytes in the fixed header that follows the length prefix
/// (`ver + opcode + flags + req_id`).
pub const HEADER_LEN: usize = 8;

/// Bytes in the trailing checksum.
pub const CRC_LEN: usize = 4;

/// Smallest legal `len` value: a header and a CRC with an empty payload.
pub const MIN_FRAME_LEN: u32 = (HEADER_LEN + CRC_LEN) as u32;

/// Largest legal `len` value (16 MiB). A length prefix above this is
/// rejected *before* any buffering, so a corrupt or hostile prefix cannot
/// make the server allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// One decoded frame (request or response — the envelope is symmetric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte as received. The codec does not reject
    /// unknown versions: the server answers them with `ERR_BAD_VERSION`
    /// (PROTOCOL.md §4), which needs the frame delivered, not dropped.
    pub version: u8,
    /// Opcode byte (semantic validation happens in [`crate::proto`]).
    pub opcode: u8,
    /// Request id, echoed by responses so clients can pipeline.
    pub req_id: u32,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A version-1 frame.
    pub fn new(opcode: u8, req_id: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: VERSION,
            opcode,
            req_id,
            payload,
        }
    }

    /// Total encoded size on the wire, including the length prefix.
    pub fn wire_len(&self) -> usize {
        4 + HEADER_LEN + self.payload.len() + CRC_LEN
    }

    /// Append the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = (HEADER_LEN + self.payload.len() + CRC_LEN) as u32;
        out.reserve(4 + len as usize);
        out.extend_from_slice(&len.to_le_bytes());
        let body_start = out.len();
        out.push(self.version);
        out.push(self.opcode);
        out.extend_from_slice(&[0, 0]); // flags: reserved, zero in v1
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[body_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// The encoded frame as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }
}

/// Why a stream stopped being parseable. Every variant is
/// connection-fatal: once the framing is untrustworthy there is no way to
/// find the next frame boundary, so the peer must close (PROTOCOL.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or the decoder's
    /// configured limit). Carries the claimed length.
    Oversize(u32),
    /// The length prefix is below [`MIN_FRAME_LEN`] — too short to hold
    /// even an empty-payload frame. Carries the claimed length.
    Undersize(u32),
    /// The trailing CRC-32 did not match the received bytes:
    /// `{ got (from the wire), want (recomputed) }`.
    BadCrc {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum recomputed over the received header + payload.
        want: u32,
    },
    /// The reserved flags bytes were non-zero. In version 1 flags would
    /// change frame-layout semantics, so an unknown flag means the rest of
    /// the frame cannot be interpreted.
    BadFlags(u16),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Undersize(len) => {
                write!(
                    f,
                    "frame length {len} below the {MIN_FRAME_LEN}-byte minimum"
                )
            }
            FrameError::BadCrc { got, want } => {
                write!(
                    f,
                    "frame CRC mismatch: wire says {got:#010x}, bytes hash to {want:#010x}"
                )
            }
            FrameError::BadFlags(flags) => {
                write!(f, "reserved frame flags set: {flags:#06x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame parser: buffer bytes as they arrive, pop frames as
/// they complete. One decoder per connection per direction.
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted
    /// lazily so a burst of small frames doesn't memmove per frame.
    consumed: usize,
    limit: u32,
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

impl Decoder {
    /// A decoder enforcing the protocol-wide [`MAX_FRAME_LEN`].
    pub fn new() -> Decoder {
        Decoder::with_limit(MAX_FRAME_LEN)
    }

    /// A decoder with a tighter frame cap (servers that want to bound
    /// per-connection memory below the protocol maximum).
    pub fn with_limit(limit: u32) -> Decoder {
        Decoder {
            buf: Vec::new(),
            consumed: 0,
            limit: limit.clamp(MIN_FRAME_LEN, MAX_FRAME_LEN),
        }
    }

    /// Buffer `bytes` (a read of any size, down to one byte).
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `consumed` is dead.
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    /// After an `Err` the stream is poisoned: the caller must stop feeding
    /// and close the connection (see [`FrameError`]).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len < MIN_FRAME_LEN {
            return Err(FrameError::Undersize(len));
        }
        if len > self.limit {
            return Err(FrameError::Oversize(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[4..total];
        let (covered, crc_bytes) = body.split_at(body.len() - CRC_LEN);
        let got = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let want = crc32(covered);
        if got != want {
            return Err(FrameError::BadCrc { got, want });
        }
        let flags = u16::from_le_bytes(covered[2..4].try_into().unwrap());
        if flags != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        let frame = Frame {
            version: covered[0],
            opcode: covered[1],
            req_id: u32::from_le_bytes(covered[4..8].try_into().unwrap()),
            payload: covered[HEADER_LEN..].to_vec(),
        };
        self.consumed += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let frame = Frame::new(2, 77, b"hello payload".to_vec());
        let wire = frame.encode();
        assert_eq!(wire.len(), frame.wire_len());
        let mut dec = Decoder::new();
        dec.feed(&wire);
        let got = dec.next_frame().unwrap().unwrap();
        assert_eq!(got, frame);
        assert_eq!(dec.pending(), 0);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn empty_payload_is_legal() {
        let frame = Frame::new(5, 0, Vec::new());
        let mut dec = Decoder::new();
        dec.feed(&frame.encode());
        assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
    }

    #[test]
    fn back_to_back_frames_in_one_feed() {
        let a = Frame::new(1, 1, b"a".to_vec());
        let b = Frame::new(3, 2, b"bb".to_vec());
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), a);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversize_length_rejected_before_buffering_payload() {
        let mut dec = Decoder::new();
        dec.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversize(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn undersize_length_rejected() {
        let mut dec = Decoder::new();
        dec.feed(&(MIN_FRAME_LEN - 1).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Undersize(MIN_FRAME_LEN - 1))
        );
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut wire = Frame::new(2, 9, b"payload".to_vec()).encode();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn nonzero_flags_rejected() {
        let mut wire = Frame::new(2, 9, b"p".to_vec()).encode();
        wire[6] = 1; // flags low byte
                     // Fix the CRC so only the flags rule fires.
        let body_end = wire.len() - CRC_LEN;
        let crc = crc32(&wire[4..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_le_bytes());
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::BadFlags(1)));
    }

    #[test]
    fn custom_limit_clamps_between_min_and_protocol_max() {
        let dec = Decoder::with_limit(0);
        assert_eq!(dec.limit, MIN_FRAME_LEN);
        let dec = Decoder::with_limit(u32::MAX);
        assert_eq!(dec.limit, MAX_FRAME_LEN);
    }

    #[test]
    fn byte_at_a_time_feed_produces_the_frame_exactly_once() {
        let frame = Frame::new(4, 123, vec![7u8; 50]);
        let wire = frame.encode();
        let mut dec = Decoder::new();
        let mut seen = 0;
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                assert_eq!(f, frame);
                seen += 1;
            }
        }
        assert_eq!(seen, 1);
    }
}
