//! Frame-codec robustness: every way a byte stream can arrive (or be
//! mangled) that the decoder must handle without panicking, plus the
//! guard that keeps `PROTOCOL.md` honest about the opcode table.

use ad_net::{Decoder, Frame, FrameError, Opcode, MAX_FRAME_LEN, VERSION};
use ad_support::crc32::crc32;

fn sample_frame() -> Frame {
    Frame::new(
        Opcode::Put as u8,
        0xfeed_beef,
        b"some payload bytes".to_vec(),
    )
}

/// A valid frame split at *every* byte boundary decodes to the same
/// frame regardless of where the read boundary fell.
#[test]
fn split_reads_at_every_byte_boundary() {
    let frame = sample_frame();
    let wire = frame.encode();
    for split in 0..=wire.len() {
        let mut dec = Decoder::new();
        dec.feed(&wire[..split]);
        if split < wire.len() {
            assert_eq!(
                dec.next_frame().expect("prefix must not be an error"),
                None,
                "decoder produced a frame from a {split}-byte prefix"
            );
        }
        dec.feed(&wire[split..]);
        let got = dec
            .next_frame()
            .unwrap_or_else(|e| panic!("split at {split}: {e}"))
            .unwrap_or_else(|| panic!("split at {split}: no frame"));
        assert_eq!(got.opcode, frame.opcode);
        assert_eq!(got.req_id, frame.req_id);
        assert_eq!(got.payload, frame.payload);
        assert_eq!(dec.next_frame().expect("drained"), None);
        assert_eq!(dec.pending(), 0, "split at {split} left residue");
    }
}

/// A truncated stream (any strict prefix) yields `None` forever — never
/// a frame, never an error: the decoder must wait for more bytes.
#[test]
fn truncated_stream_stays_pending() {
    let wire = sample_frame().encode();
    for cut in 0..wire.len() {
        let mut dec = Decoder::new();
        dec.feed(&wire[..cut]);
        for _ in 0..3 {
            assert_eq!(dec.next_frame().expect("no error on prefix"), None);
        }
        assert_eq!(dec.pending(), cut);
    }
}

/// A length prefix above the limit is rejected before the payload is
/// buffered — the connection-level defense against memory-exhaustion
/// frames (PROTOCOL.md §3).
#[test]
fn oversize_length_is_rejected_from_the_prefix_alone() {
    let mut dec = Decoder::new();
    let too_big = MAX_FRAME_LEN + 1;
    dec.feed(&too_big.to_le_bytes());
    match dec.next_frame() {
        Err(FrameError::Oversize(n)) => assert_eq!(n, too_big),
        other => panic!("expected Oversize, got {other:?}"),
    }
}

/// Flipping any single payload byte is caught by the CRC.
#[test]
fn any_single_byte_corruption_is_caught() {
    let wire = sample_frame().encode();
    // Skip the 4-byte length prefix: corrupting it turns into a different
    // (possibly oversize/undersize) framing error, tested elsewhere.
    for i in 4..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0x40;
        let mut dec = Decoder::new();
        dec.feed(&bad);
        match dec.next_frame() {
            Err(FrameError::BadCrc { .. }) | Err(FrameError::BadFlags(_)) => {}
            other => panic!("corruption at byte {i} not caught: {other:?}"),
        }
    }
}

/// After a CRC error the decoder refuses to resynchronize — the server
/// closes the connection rather than guessing at frame boundaries.
#[test]
fn corruption_then_good_frame_still_errors() {
    let good = sample_frame().encode();
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let mut dec = Decoder::new();
    dec.feed(&bad);
    dec.feed(&good);
    assert!(dec.next_frame().is_err(), "corrupt frame must error");
}

/// `PROTOCOL.md` §4 must document every opcode the server implements:
/// each row of the opcode table carries the canonical name and code. A
/// new `Opcode` variant fails this test until the spec is updated.
#[test]
fn protocol_md_documents_every_opcode() {
    let spec = include_str!("../../../PROTOCOL.md");
    for op in Opcode::ALL {
        let row = format!("| `{}` | {} |", op.name(), op as u8);
        assert!(
            spec.contains(&row),
            "PROTOCOL.md opcode table is missing a row starting {row:?} for {:?}",
            op
        );
    }
    // And the reverse: the spec's version must match the implementation.
    assert!(
        spec.contains(&format!("version is **{VERSION}**")),
        "PROTOCOL.md does not state protocol version {VERSION}"
    );
}

/// The canonical frame bytes in `PROTOCOL.md` §2 decode to the frame the
/// spec says they are (spec and codec can't drift apart silently).
#[test]
fn spec_example_frame_round_trips() {
    // PROTOCOL.md §2 example: GET "k" — the exact bytes are derived here
    // the same way the spec text derives them.
    let payload = {
        let mut p = Vec::new();
        p.extend_from_slice(&1u16.to_le_bytes());
        p.push(b'k');
        p
    };
    let frame = Frame::new(Opcode::Get as u8, 7, payload);
    let wire = frame.encode();
    // len = 8 (header) + 3 (payload) + 4 (crc) = 15
    assert_eq!(&wire[..4], &15u32.to_le_bytes());
    assert_eq!(wire[4], VERSION);
    assert_eq!(wire[5], Opcode::Get as u8);
    assert_eq!(&wire[6..8], &[0, 0]);
    assert_eq!(&wire[8..12], &7u32.to_le_bytes());
    assert_eq!(&wire[12..15], &[1, 0, b'k']);
    let crc = crc32(&wire[4..15]);
    assert_eq!(&wire[15..], &crc.to_le_bytes());
}
