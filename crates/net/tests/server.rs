//! End-to-end loopback tests: every opcode over a real socket, the
//! durability contract against a byte-exact in-memory WAL medium, and
//! the failure modes a server must shrug off — half-sent frames, killed
//! connections, unknown opcodes, wrong protocol versions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use ad_kv::{KvConfig, KvStore, MemDisk, MemMedium, SyncPolicy, WriteBatch};
use ad_net::{Client, Decoder, Frame, Opcode, Response, Server, ServerConfig, VERSION};
use ad_support::crc32::crc32;

fn volatile_server() -> Server {
    let store = Arc::new(KvStore::open(KvConfig::volatile()).unwrap());
    Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap()
}

fn durable_server() -> (Server, MemMedium) {
    let medium = MemMedium::new();
    let (store, _report) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::GroupCommit,
        Box::new(medium.clone()),
        &[],
    );
    let server = Server::start(Arc::new(store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    (server, medium)
}

/// Read one response frame from a raw socket (for tests that bypass
/// [`Client`] to send hand-crafted bytes).
fn read_raw_frame(stream: &mut TcpStream) -> Frame {
    let mut dec = Decoder::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("well-formed response") {
            return frame;
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed the connection unexpectedly");
        dec.feed(&buf[..n]);
    }
}

#[test]
fn every_opcode_round_trips() {
    let server = volatile_server();
    let mut c = Client::connect(server.local_addr()).unwrap();

    assert_eq!(c.get("missing").unwrap(), None);
    c.put("k1", b"v1").unwrap();
    assert_eq!(c.get("k1").unwrap().as_deref(), Some(&b"v1"[..]));
    c.del("k1").unwrap();
    assert_eq!(c.get("k1").unwrap(), None);

    let n = c
        .batch(
            &WriteBatch::new()
                .put("a", &b"1"[..])
                .put("b", &b"2"[..])
                .delete("a"),
        )
        .unwrap();
    assert_eq!(n, 3);
    assert_eq!(c.get("a").unwrap(), None);
    assert_eq!(c.get("b").unwrap().as_deref(), Some(&b"2"[..]));

    c.sync().unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.starts_with("{\"net\":"), "stats shape: {stats}");
    assert!(stats.contains("\"store\":"), "stats shape: {stats}");
    assert_eq!(stats.matches('{').count(), stats.matches('}').count());
}

/// The wire-level durability contract against a byte-exact medium: when
/// the PUT ack arrives, the redo record is already inside the *synced*
/// prefix of the WAL — not just written.
#[test]
fn put_ack_implies_synced_wal_bytes() {
    let (server, medium) = durable_server();
    let mut c = Client::connect(server.local_addr()).unwrap();

    assert!(medium.synced().is_empty(), "no writes yet");
    c.put("durable-key", b"durable-value").unwrap();
    let synced = medium.synced();
    assert!(
        !synced.is_empty(),
        "PUT was acked but the WAL synced prefix is empty — ack did not imply durable"
    );
    // The record (key and value bytes) must be inside the synced prefix,
    // not merely the written suffix.
    let find = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
    assert!(find(&synced, b"durable-key"));
    assert!(find(&synced, b"durable-value"));
    drop(c);
    drop(server);
}

/// The server keeps answering — reads *and* durable writes — while a
/// checkpoint is in flight. The snapshot publish is parked on the
/// [`MemDisk`] publish gate, so the whole request/response exchange
/// below happens strictly inside the checkpoint's publish window; only
/// the checkpointer thread blocks, never the serving path.
#[test]
fn server_keeps_serving_during_a_checkpoint() {
    let disk = MemDisk::new();
    let (store, _report) =
        KvStore::open_on_disk(&KvConfig::default(), SyncPolicy::GroupCommit, disk.clone());
    let store = Arc::new(store);
    let server = Server::start(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.put("k", b"before").unwrap();

    disk.hold_publishes();
    let ck_store = Arc::clone(&store);
    let ck = std::thread::spawn(move || ck_store.checkpoint().expect("checkpoint"));
    while !disk.publish_blocked() {
        std::thread::yield_now();
    }

    assert_eq!(c.get("k").unwrap().as_deref(), Some(&b"before"[..]));
    c.put("k2", b"during").unwrap();
    assert_eq!(c.get("k2").unwrap().as_deref(), Some(&b"during"[..]));
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"ckpt\""),
        "disk-backed STATS carries the checkpoint section: {stats}"
    );

    disk.release_publishes();
    let report = ck.join().unwrap();
    assert!(report.performed);
    assert!(report.cut >= 1, "the pre-checkpoint put is under the cut");
    // The mid-checkpoint write survives the snapshot + suffix split.
    assert_eq!(c.get("k2").unwrap().as_deref(), Some(&b"during"[..]));
    assert_eq!(store.ckpt_stats().expect("ckpt tier").count, 1);
}

/// A client that dies mid-frame (half a BATCH on the wire, then RST)
/// must not wedge the store: the partial frame never decodes, no locks
/// are taken, and other connections proceed.
#[test]
fn killed_connection_mid_frame_leaves_store_usable() {
    let (server, _medium) = durable_server();
    let addr = server.local_addr();

    let batch = WriteBatch::new()
        .put("x", vec![7u8; 512])
        .put("y", vec![8u8; 512]);
    let wire = Frame::new(
        Opcode::Batch as u8,
        1,
        ad_net::Request::from_write_batch(&batch).encode_payload(),
    )
    .encode();

    let mut half = TcpStream::connect(addr).unwrap();
    half.write_all(&wire[..wire.len() / 2]).unwrap();
    drop(half); // killed mid-frame

    let mut c = Client::connect(addr).unwrap();
    c.put("after-kill", b"ok").unwrap();
    assert_eq!(c.get("after-kill").unwrap().as_deref(), Some(&b"ok"[..]));
}

/// A client that sends a *complete* BATCH but dies before reading the
/// response: the server finishes the write (and its durability wait),
/// releases the shard locks, and the data is visible to others.
#[test]
fn killed_connection_after_full_batch_releases_locks() {
    let (server, medium) = durable_server();
    let addr = server.local_addr();

    let batch = WriteBatch::new()
        .put("orphan-1", &b"a"[..])
        .put("orphan-2", &b"b"[..]);
    let wire = Frame::new(
        Opcode::Batch as u8,
        9,
        ad_net::Request::from_write_batch(&batch).encode_payload(),
    )
    .encode();

    let mut rude = TcpStream::connect(addr).unwrap();
    rude.write_all(&wire).unwrap();
    drop(rude); // never reads the ack

    // Another connection must be able to read and write those keys —
    // i.e. the batch's shard locks were released after the deferred
    // fsync, not leaked with the connection.
    let mut c = Client::connect(addr).unwrap();
    c.put("other", b"w").unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        // The orphan batch races with our connect; poll until visible.
        if c.get("orphan-1").unwrap().as_deref() == Some(&b"a"[..]) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned batch never became visible — locks leaked?"
        );
        std::thread::yield_now();
    }
    assert_eq!(c.get("orphan-2").unwrap().as_deref(), Some(&b"b"[..]));
    assert!(!medium.synced().is_empty());
}

/// Unknown opcode: answered with `ERR_UNKNOWN_OPCODE` (status error, not
/// a structural one) and the connection stays usable.
#[test]
fn unknown_opcode_is_answered_and_connection_survives() {
    let server = volatile_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();

    let bogus = Frame::new(0x7f, 42, Vec::new()).encode();
    raw.write_all(&bogus).unwrap();
    let reply = read_raw_frame(&mut raw);
    assert_eq!(reply.req_id, 42);
    assert_eq!(
        reply.payload.first(),
        Some(&ad_net::proto::status::ERR_UNKNOWN_OPCODE)
    );

    // Same socket still serves well-formed requests.
    let get = Frame::new(
        Opcode::Get as u8,
        43,
        ad_net::Request::Get { key: "nope".into() }.encode_payload(),
    )
    .encode();
    raw.write_all(&get).unwrap();
    let reply = read_raw_frame(&mut raw);
    assert_eq!(reply.req_id, 43);
    assert_eq!(
        Response::decode(Opcode::Get, &reply.payload),
        Some(Response::Value(None))
    );

    let snap = server.stats();
    assert_eq!(snap.net_status_errors, 1);
    assert_eq!(snap.net_frame_errors, 0);
}

/// Wrong protocol version: answered with `ERR_BAD_VERSION` so old
/// clients get a diagnosable refusal instead of a dropped connection
/// (PROTOCOL.md §4.2).
#[test]
fn bad_version_is_answered_with_its_own_status() {
    let server = volatile_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();

    let mut wire = Frame::new(
        Opcode::Get as u8,
        5,
        ad_net::Request::Get { key: "k".into() }.encode_payload(),
    )
    .encode();
    wire[4] = VERSION + 1; // future version
    let end = wire.len() - 4;
    let crc = crc32(&wire[4..end]).to_le_bytes();
    wire[end..].copy_from_slice(&crc);

    raw.write_all(&wire).unwrap();
    let reply = read_raw_frame(&mut raw);
    assert_eq!(reply.req_id, 5);
    assert_eq!(
        reply.payload.first(),
        Some(&ad_net::proto::status::ERR_BAD_VERSION)
    );
}

/// A structural error (corrupt CRC) closes the connection — and only
/// that connection.
#[test]
fn corrupt_frame_closes_only_its_connection() {
    let server = volatile_server();
    let addr = server.local_addr();

    let mut bad_conn = TcpStream::connect(addr).unwrap();
    let mut wire = Frame::new(Opcode::Sync as u8, 1, Vec::new()).encode();
    let last = wire.len() - 1;
    wire[last] ^= 0xff;
    bad_conn.write_all(&wire).unwrap();
    // The server closes; our next read sees EOF (possibly after RST).
    let mut buf = [0u8; 16];
    let closed = matches!(bad_conn.read(&mut buf), Ok(0) | Err(_));
    assert!(closed, "server kept a connection after a CRC error");

    // Other connections are unaffected.
    let mut c = Client::connect(addr).unwrap();
    c.put("still-alive", b"yes").unwrap();
    assert_eq!(c.get("still-alive").unwrap().as_deref(), Some(&b"yes"[..]));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().net_frame_errors == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "frame error never counted"
        );
        std::thread::yield_now();
    }
}
