//! Concurrent store semantics: batch atomicity across shards, the
//! ack-implies-durable contract under load, and group-commit coalescing
//! through the full `atomic_defer` path (not just the WAL in isolation).

use std::collections::BTreeMap;
use std::sync::Arc;

use ad_kv::{KvConfig, KvStore, MemMedium, SyncPolicy, WriteBatch};
use ad_support::sync::atomic::{AtomicBool, Ordering};

/// Observers must never see half of a cross-shard batch. The writer keeps
/// two keys equal (they hash to different shards with overwhelming
/// probability across 64 names); `get_many` reads both in one transaction.
#[test]
fn cross_shard_batches_are_atomic_to_readers() {
    let store = Arc::new(KvStore::open(KvConfig::volatile()).unwrap());
    store.write_batch(&WriteBatch::new().put("left", "0").put("right", "0"));
    let stop = Arc::new(AtomicBool::new(false));

    let observers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let pair = store.get_many(&["left", "right"]);
                    assert_eq!(
                        pair[0], pair[1],
                        "torn batch observed after {checked} reads"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for i in 1..=200u32 {
        let v = i.to_string();
        store.write_batch(&WriteBatch::new().put("left", v.clone()).put("right", v));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = observers.into_iter().map(|o| o.join().unwrap()).sum();
    assert!(total > 0, "observers never ran");
    assert_eq!(store.get("left").as_deref(), Some("200".as_bytes()));
}

/// Hammer a durable store from 8 threads; every acked write must be in
/// the synced image, and recovery from that image reproduces the final
/// state exactly.
#[test]
fn concurrent_durable_writes_all_survive_recovery() {
    let cfg = KvConfig::default();
    let mem = MemMedium::new();
    let (store, _) =
        KvStore::open_on_medium(&cfg, SyncPolicy::GroupCommit, Box::new(mem.clone()), &[]);
    let store = Arc::new(store);

    let threads = 8;
    let per = 25u32;
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..per {
                    store.put(&format!("t{t}-k{i:03}"), format!("v{t}-{i}").as_bytes());
                }
            });
        }
    });

    let live = store.dump();
    assert_eq!(live.len(), (threads * per) as usize);

    let (recovered, report) = KvStore::open_on_medium(
        &cfg,
        SyncPolicy::GroupCommit,
        Box::new(MemMedium::new()),
        &mem.synced(),
    );
    assert!(!report.torn(), "synced image must be a clean log");
    assert_eq!(report.records, u64::from(threads * per));
    assert_eq!(recovered.dump(), live);
}

/// Group commit coalesces through the whole stack: concurrent committers'
/// deferred appends share fsyncs (batches < records), and the observability
/// counters agree with the medium.
#[test]
fn group_commit_coalesces_through_the_store() {
    struct SlowSync(MemMedium);
    impl ad_kv::WalMedium for SlowSync {
        fn append(&mut self, data: &[u8]) {
            self.0.append(data);
        }
        fn sync(&mut self) {
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.0.sync();
        }
    }
    let mem = MemMedium::new();
    let cfg = KvConfig::default();
    let (store, _) = KvStore::open_on_medium(
        &cfg,
        SyncPolicy::GroupCommit,
        Box::new(SlowSync(mem.clone())),
        &[],
    );
    let store = Arc::new(store);
    std::thread::scope(|s| {
        for t in 0..8 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..10 {
                    store.put(&format!("t{t}-{i}"), b"x");
                }
            });
        }
    });
    let stats = store.wal_stats().unwrap();
    assert_eq!(stats.records, 80);
    assert!(
        stats.batches < stats.records,
        "no coalescing through the store: {} batches / {} records",
        stats.batches,
        stats.records
    );
    assert_eq!(mem.sync_count(), stats.batches);
    assert!(stats.coalescing() > 1.0);
}

/// The two sync policies must be semantically identical — same final
/// state, same recovered state — differing only in fsync count.
#[test]
fn sync_policies_are_semantically_equivalent() {
    let cfg = KvConfig::default();
    type Dump = BTreeMap<String, Vec<u8>>;
    let run = |sync: SyncPolicy| -> (Dump, Dump, u64) {
        let mem = MemMedium::new();
        let (store, _) = KvStore::open_on_medium(&cfg, sync, Box::new(mem.clone()), &[]);
        for i in 0..30u32 {
            match i % 3 {
                0 => store.put(&format!("k{}", i % 10), &i.to_le_bytes()),
                1 => store.write_batch(
                    &WriteBatch::new()
                        .put(format!("k{}", i % 10), "batched")
                        .put(format!("extra{i}"), "e"),
                ),
                _ => store.delete(&format!("extra{}", i - 1)),
            }
        }
        let live = store.dump();
        let (rec, _) =
            KvStore::open_on_medium(&cfg, sync, Box::new(MemMedium::new()), &mem.synced());
        (live, rec.dump(), mem.sync_count())
    };
    let (live_g, rec_g, syncs_g) = run(SyncPolicy::GroupCommit);
    let (live_p, rec_p, syncs_p) = run(SyncPolicy::PerCommit);
    assert_eq!(live_g, live_p);
    assert_eq!(rec_g, live_g);
    assert_eq!(rec_p, live_p);
    // Single-threaded: PerCommit pays one fsync per record; GroupCommit
    // with no concurrency also degenerates to that. Both counted sanely.
    assert_eq!(syncs_p, 30);
    assert!(syncs_g >= 1);
}

/// Volatile stores never touch a WAL but keep full transactional
/// semantics.
#[test]
fn volatile_store_has_no_wal() {
    let store = KvStore::open(KvConfig::volatile()).unwrap();
    store.put("k", b"v");
    assert!(store.wal_stats().is_none());
    assert!(store.recovery_report().is_none());
}

/// Shard-count override plumbs through and still distributes keys.
#[test]
fn shard_override_distributes_keys() {
    let store = KvStore::open(KvConfig {
        shards: 4,
        buckets_per_shard: 8,
        ..KvConfig::volatile()
    })
    .unwrap();
    assert_eq!(store.shard_count(), 4);
    for i in 0..100 {
        store.put(&format!("key-{i}"), b"v");
    }
    assert_eq!(store.len(), 100);
    assert_eq!(store.scan_from("key-9", 100).len(), 11); // key-9, key-90..99
}
