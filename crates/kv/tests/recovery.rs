//! Crash-recovery matrix: the durability contract under byte-exact crash
//! injection.
//!
//! The contract (DESIGN.md §9): after a crash, the store recovers
//! **exactly a committed prefix** of its write history — every acked write
//! whose bytes reached the durable prefix, never a partially-applied
//! transaction, never a record that follows a hole. `MemMedium` makes this
//! checkable exhaustively: tests run a real store, grab the written byte
//! stream, and re-open from *every* possible crash image.

use std::collections::BTreeMap;

use ad_kv::recover::{encode_redo, scan, ScanEnd};
use ad_kv::wal::frame_record;
use ad_kv::{KvConfig, KvStore, MemMedium, SyncPolicy, Wal, WriteBatch};
use ad_stm::{Runtime, TmConfig};

/// One batch = one redo record = one transaction.
type Ops = Vec<(String, Option<Vec<u8>>)>;

fn batch_of(ops: &Ops) -> WriteBatch {
    let mut b = WriteBatch::new();
    for (k, v) in ops {
        b = match v {
            Some(v) => b.put(k.clone(), v.clone()),
            None => b.delete(k.clone()),
        };
    }
    b
}

/// The expected store contents after the first `n` batches.
fn model(batches: &[Ops], n: usize) -> BTreeMap<String, Vec<u8>> {
    let mut m = BTreeMap::new();
    for ops in &batches[..n] {
        for (k, v) in ops {
            match v {
                Some(v) => {
                    m.insert(k.clone(), v.clone());
                }
                None => {
                    m.remove(k);
                }
            }
        }
    }
    m
}

fn history() -> Vec<Ops> {
    vec![
        vec![("alpha".into(), Some(b"1".to_vec()))],
        vec![
            ("beta".into(), Some(b"2".to_vec())),
            ("gamma".into(), Some(b"3".to_vec())),
            ("delta".into(), Some(b"4".to_vec())),
        ],
        vec![
            ("alpha".into(), None),
            ("beta".into(), Some(b"22".to_vec())),
        ],
        vec![
            ("epsilon".into(), Some(vec![0u8; 200])),
            ("gamma".into(), None),
        ],
        vec![("zeta".into(), Some(b"6".to_vec()))],
    ]
}

/// The core property, checked exhaustively: for EVERY byte-truncation of
/// the WAL, recovery yields the store state after some whole number of
/// batches — never a torn record, never half a multi-key batch.
#[test]
fn every_crash_point_recovers_exactly_a_committed_prefix() {
    let cfg = KvConfig::default();
    let batches = history();
    let mem = MemMedium::new();
    let (store, _) =
        KvStore::open_on_medium(&cfg, SyncPolicy::GroupCommit, Box::new(mem.clone()), &[]);
    for ops in &batches {
        store.write_batch(&batch_of(ops));
    }
    let full = mem.written();
    assert_eq!(mem.synced(), full, "all acked writes must be synced");

    for cut in 0..=full.len() {
        let image = &full[..cut];
        let (recovered, report) = KvStore::open_on_medium(
            &cfg,
            SyncPolicy::GroupCommit,
            Box::new(MemMedium::new()),
            image,
        );
        let n = report.records as usize;
        assert!(n <= batches.len(), "cut={cut}: recovered too many records");
        assert_eq!(
            recovered.dump(),
            model(&batches, n),
            "cut={cut}: state is not the {n}-batch prefix"
        );
        assert_eq!(
            report.valid_bytes + report.truncated_bytes,
            cut as u64,
            "cut={cut}: report bytes don't add up"
        );
    }
}

/// A multi-key batch is one record: a crash can drop it entirely but can
/// never surface a subset of its keys.
#[test]
fn crash_never_yields_a_partial_batch() {
    let cfg = KvConfig::default();
    let batch: Ops = vec![
        ("k1".into(), Some(b"v1".to_vec())),
        ("k2".into(), Some(b"v2".to_vec())),
        ("k3".into(), Some(b"v3".to_vec())),
    ];
    let mem = MemMedium::new();
    let (store, _) =
        KvStore::open_on_medium(&cfg, SyncPolicy::GroupCommit, Box::new(mem.clone()), &[]);
    store.write_batch(&batch_of(&batch));
    let full = mem.written();

    for cut in 0..=full.len() {
        let (recovered, _) = KvStore::open_on_medium(
            &cfg,
            SyncPolicy::GroupCommit,
            Box::new(MemMedium::new()),
            &full[..cut],
        );
        let dump = recovered.dump();
        assert!(
            dump.is_empty() || dump.len() == 3,
            "cut={cut}: partial batch surfaced: {:?}",
            dump.keys().collect::<Vec<_>>()
        );
    }
}

/// Torn tail mid-record: the fixture has two whole records plus the first
/// half of a third. Recovery keeps exactly two and truncates the rest.
#[test]
fn fixture_torn_tail_mid_record() {
    let mut log = Vec::new();
    frame_record(
        &mut log,
        1,
        &encode_redo(1, &[("a".into(), Some(b"1".to_vec()))]),
    );
    frame_record(
        &mut log,
        2,
        &encode_redo(2, &[("b".into(), Some(b"2".to_vec()))]),
    );
    let intact = log.len();
    let mut third = Vec::new();
    frame_record(
        &mut third,
        3,
        &encode_redo(3, &[("c".into(), Some(b"3".to_vec()))]),
    );
    log.extend_from_slice(&third[..third.len() / 2]);

    let (records, report) = scan(&log, 1);
    assert_eq!(records.len(), 2);
    assert_eq!(report.end, ScanEnd::TruncatedRecord);
    assert_eq!(report.valid_bytes as usize, intact);
    assert!(report.torn());

    let cfg = KvConfig::default();
    let (store, rep) = KvStore::open_on_medium(
        &cfg,
        SyncPolicy::GroupCommit,
        Box::new(MemMedium::new()),
        &log,
    );
    assert_eq!(rep.records, 2);
    assert_eq!(store.len(), 2);
    assert_eq!(store.get("c"), None);
}

/// Bit-rot inside an early record: everything from the corruption on is
/// discarded (prefix-only recovery — replaying past a hole would reorder
/// same-key updates).
#[test]
fn fixture_corrupt_record_drops_suffix() {
    let mut log = Vec::new();
    let r1_end = frame_record(
        &mut log,
        1,
        &encode_redo(1, &[("a".into(), Some(b"1".to_vec()))]),
    );
    frame_record(
        &mut log,
        2,
        &encode_redo(2, &[("b".into(), Some(b"2".to_vec()))]),
    );
    frame_record(
        &mut log,
        3,
        &encode_redo(3, &[("c".into(), Some(b"3".to_vec()))]),
    );
    log[r1_end + 24] ^= 0x01; // a payload byte of record 2

    let (records, report) = scan(&log, 1);
    assert_eq!(records.len(), 1);
    assert_eq!(report.end, ScanEnd::BadChecksum);

    let (store, _) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::GroupCommit,
        Box::new(MemMedium::new()),
        &log,
    );
    assert_eq!(store.dump().keys().collect::<Vec<_>>(), vec!["a"]);
}

/// A crash *between* group-commit batches loses nothing and needs no
/// truncation: the synced prefix is a clean log.
#[test]
fn crash_between_group_commit_batches_is_clean() {
    let mem = MemMedium::new();
    let wal = std::sync::Arc::new(Wal::new(Box::new(mem.clone()), SyncPolicy::GroupCommit, 1));
    let rt = std::sync::Arc::new(Runtime::new(TmConfig::stm()));
    std::thread::scope(|s| {
        for t in 0..4 {
            let wal = std::sync::Arc::clone(&wal);
            let rt = std::sync::Arc::clone(&rt);
            s.spawn(move || {
                for i in 0..5u32 {
                    let key = format!("t{t}k{i}");
                    let payload = encode_redo(u64::from(i) + 1, &[(key, Some(b"v".to_vec()))]);
                    wal.append_durable(&payload, &rt);
                }
            });
        }
    });
    // Crash image = exactly the durable prefix.
    let image = mem.synced();
    let (records, report) = scan(&image, 1);
    assert_eq!(records.len(), 20);
    assert_eq!(report.end, ScanEnd::Clean);
    assert!(!report.torn());
    assert_eq!(report.last_seq, 20);
}

/// A crash *mid-batch* (some of a group-committed batch's bytes written
/// but the fsync never returned): the surviving records are still a valid
/// prefix — exactly the transactions whose full record made it.
#[test]
fn crash_mid_batch_keeps_whole_record_prefix() {
    // Build one group-commit batch of 3 records by framing them back to
    // back, as the leader's single write would.
    let mut batch = Vec::new();
    let ends: Vec<usize> = (1..=3u64)
        .map(|seq| {
            frame_record(
                &mut batch,
                seq,
                &encode_redo(seq, &[(format!("k{seq}"), Some(b"v".to_vec()))]),
            );
            batch.len()
        })
        .collect();

    for cut in 0..=batch.len() {
        let (records, report) = scan(&batch[..cut], 1);
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(records.len(), expect, "cut={cut}");
        // Torn exactly when the cut is strictly inside a record.
        assert_eq!(report.torn(), !ends.contains(&cut) && cut != 0, "cut={cut}");
    }
}

/// Acked writes survive: whatever was acked before the crash is present
/// after recovery, even when unsynced trailing bytes are arbitrarily
/// truncated.
#[test]
fn acked_writes_survive_any_loss_of_unsynced_tail() {
    let cfg = KvConfig::default();
    let mem = MemMedium::new();
    let (store, _) =
        KvStore::open_on_medium(&cfg, SyncPolicy::GroupCommit, Box::new(mem.clone()), &[]);
    let mut acked = Vec::new();
    for i in 0..10u32 {
        let key = format!("key{i:02}");
        store.put(&key, b"payload");
        acked.push(key); // put returned => acked => must survive
    }
    // The kernel may persist any amount of post-sync garbage after the
    // durable prefix; emulate by recovering from synced() + junk.
    let mut image = mem.synced();
    image.extend_from_slice(b"\xde\xad\xbe\xef torn garbage");
    let (recovered, report) = KvStore::open_on_medium(
        &cfg,
        SyncPolicy::GroupCommit,
        Box::new(MemMedium::new()),
        &image,
    );
    assert!(report.torn());
    let dump = recovered.dump();
    for key in &acked {
        assert!(dump.contains_key(key), "acked write {key} lost");
    }
}

/// Same history under PerCommit: identical recovery semantics (the sync
/// policy changes batching, never the on-disk format or the contract).
#[test]
fn per_commit_history_recovers_identically() {
    let cfg = KvConfig::default();
    let batches = history();
    let mem = MemMedium::new();
    let (store, _) =
        KvStore::open_on_medium(&cfg, SyncPolicy::PerCommit, Box::new(mem.clone()), &[]);
    for ops in &batches {
        store.write_batch(&batch_of(ops));
    }
    let expected = store.dump();
    assert_eq!(expected, model(&batches, batches.len()));

    let (recovered, report) = KvStore::open_on_medium(
        &cfg,
        SyncPolicy::PerCommit,
        Box::new(MemMedium::new()),
        &mem.synced(),
    );
    assert_eq!(report.records as usize, batches.len());
    assert_eq!(recovered.dump(), expected);
}
