//! Byte-level crash matrix across checkpoint boundaries.
//!
//! A scripted history of batches and checkpoints runs on a [`MemDisk`],
//! which journals every durability-relevant disk operation (appends,
//! syncs, creates, renames, deletes). The matrix then rebuilds the disk
//! as of **every** journal prefix — including byte-level cuts inside
//! each append, and pessimistic images where unsynced bytes are lost —
//! reopens each image with full two-tier recovery, and asserts the
//! recovered state is exactly some committed prefix of the history:
//! no lost acked write is tolerated silently (membership in the model
//! set), no torn multi-key batch, no resurrected delete.
//!
//! The interesting windows this enumerates:
//!
//! - crash after `Wal::rotate` but before the snapshot publish — the
//!   new segment exists, the snapshot doesn't; recovery chains the
//!   segments and replays everything;
//! - crash mid-snapshot-write — a partial `snapshot.tmp` exists;
//!   recovery ignores and deletes it;
//! - **crash between the snapshot rename and the WAL truncate** — the
//!   published snapshot *and* the covered segments coexist; recovery
//!   must skip covered records (`seq <= cut`) idempotently rather than
//!   replay them on top of the snapshot;
//! - crash after the truncate — the snapshot plus the suffix segment.
//!
//! Every recovered image is additionally exercised forward: an immediate
//! checkpoint (which, on the crash-after-rotate images, re-rotates at
//! the same cut and must reuse the already-active empty segment rather
//! than rotate into it and delete it), a write, and a second reopen that
//! must preserve both the recovered prefix and the new write.

use std::collections::BTreeMap;

use ad_kv::{CkptPolicy, KvConfig, KvStore, MemDisk, SnapshotSource, SyncPolicy, WriteBatch};

fn cfg() -> KvConfig {
    let mut c = KvConfig::volatile().with_shards(2);
    c.buckets_per_shard = 4;
    c.ckpt = CkptPolicy::Manual;
    c
}

/// One step of the scripted history.
enum Step {
    /// An atomic batch: `(key, Some(value))` puts, `(key, None)` deletes.
    /// One redo record however many ops.
    Batch(Vec<(&'static str, Option<&'static str>)>),
    /// A manual checkpoint.
    Ckpt,
}

struct History {
    /// The live disk whose journal the matrix replays.
    disk: MemDisk,
    /// Committed state after each record (index 0 = empty store).
    models: Vec<BTreeMap<String, Vec<u8>>>,
    /// Total committed records.
    records: u64,
    /// Cut of the last published snapshot (0 if none).
    last_cut: u64,
}

fn run_history(steps: &[Step]) -> History {
    let disk = MemDisk::new();
    let (store, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk.clone());
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut models = vec![model.clone()];
    let mut records = 0;
    let mut last_cut = 0;
    for step in steps {
        match step {
            Step::Batch(ops) => {
                let mut b = WriteBatch::new();
                for (k, v) in ops {
                    b = match v {
                        Some(v) => b.put(*k, v.as_bytes()),
                        None => b.delete(*k),
                    };
                }
                store.write_batch(&b);
                for (k, v) in ops {
                    match v {
                        Some(v) => {
                            model.insert((*k).to_string(), v.as_bytes().to_vec());
                        }
                        None => {
                            model.remove(*k);
                        }
                    }
                }
                records += 1;
                models.push(model.clone());
            }
            Step::Ckpt => {
                let report = store.checkpoint().expect("checkpoint");
                assert!(report.performed, "scripted checkpoints have new data");
                assert_eq!(report.cut, records, "PerCommit: cut == acked records");
                last_cut = report.cut;
            }
        }
    }
    assert_eq!(store.dump(), model);
    History {
        disk,
        models,
        records,
        last_cut,
    }
}

fn scripted() -> Vec<Step> {
    vec![
        Step::Batch(vec![("a1", Some("v1"))]),
        Step::Batch(vec![("a2", Some("v2")), ("a3", Some("v3"))]),
        Step::Batch(vec![("a1", Some("v1b"))]), // overwrite
        Step::Batch(vec![("a3", None)]),        // delete
        Step::Ckpt,
        Step::Batch(vec![("b1", Some("w1"))]),
        Step::Batch(vec![("a1", None), ("b2", Some("w2"))]), // cross-ckpt delete
        Step::Ckpt,
        Step::Batch(vec![("c1", Some("x1"))]),
        Step::Batch(vec![("c2", Some("x2"))]),
    ]
}

#[test]
fn crash_matrix_across_checkpoint_boundaries() {
    let h = run_history(&scripted());
    let mut images = 0u64;
    let mut rename_truncate_window = 0u64;
    let mut check = |img: MemDisk| {
        let (re, report) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, img.clone());
        let dump = re.dump();
        assert!(
            h.models.contains(&dump),
            "recovered state is not a committed prefix: {dump:?}\nreport: {report:?}"
        );
        // The suffix bound: replay never exceeds the records past the cut.
        assert!(
            report.replayed <= h.records - report.snapshot_cut,
            "replayed {} > records-after-cut {}",
            report.replayed,
            h.records - report.snapshot_cut
        );
        // The rename-before-truncate window: a published snapshot while
        // covered records still sit in the segments. The scan sees them
        // (records > replayed) but replay must skip them idempotently.
        if report.snapshot_cut > 0 && report.records > report.replayed {
            rename_truncate_window += 1;
        }
        // The recovered store must stay usable: checkpoint it right away
        // (the crash-between-rotate-and-publish images resume on an empty
        // segment already named for the cut — rotation must reuse it, not
        // rotate into it and delete the live segment), write, and reopen.
        re.checkpoint().expect("checkpoint on recovered image");
        re.put("zz-crash-probe", b"pc");
        drop(re);
        let (re2, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, img);
        let mut dump2 = re2.dump();
        assert_eq!(
            dump2.remove("zz-crash-probe").as_deref(),
            Some(&b"pc"[..]),
            "post-recovery write lost across the second reopen"
        );
        assert_eq!(
            dump2, dump,
            "second reopen changed the recovered state\nreport: {report:?}"
        );
        images += 1;
    };

    let n = h.disk.journal_len();
    for ev in 0..=n {
        // Whole-event boundary: optimistic (unsynced bytes survived) and
        // pessimistic (every file cut to its synced prefix).
        check(h.disk.crash_image(ev, 0, false));
        check(h.disk.crash_image(ev, 0, true));
        // Byte-level cuts inside an append (torn writes).
        if let Some(len) = h.disk.event_append_len(ev) {
            for cut in 1..len {
                check(h.disk.crash_image(ev, cut, false));
            }
        }
    }
    assert!(images > 100, "matrix too small: {images}");
    assert!(
        rename_truncate_window > 0,
        "matrix never hit the rename-before-truncate window"
    );
}

#[test]
fn post_checkpoint_reopen_replays_only_the_suffix() {
    let h = run_history(&scripted());
    // Clean reopen (no crash): the snapshot supplies everything up to
    // the last cut; replay covers exactly the suffix.
    let (re, report) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, h.disk.clone());
    assert_eq!(report.snapshot_source, SnapshotSource::Current);
    assert_eq!(report.snapshot_cut, h.last_cut);
    assert_eq!(report.replayed, h.records - h.last_cut);
    assert!(report.replayed <= h.records - report.snapshot_cut);
    assert_eq!(&re.dump(), h.models.last().unwrap());

    // And the reopened store keeps working: writes, another checkpoint,
    // another reopen.
    re.put("post", b"reopen");
    let ck = re.checkpoint().expect("checkpoint after reopen");
    assert!(ck.performed);
    assert!(ck.cut > h.last_cut);
    drop(re);
    let (re2, r2) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, h.disk.clone());
    assert_eq!(r2.replayed, 0, "everything is under the new snapshot");
    assert_eq!(
        re2.get("post").as_deref(),
        Some(&b"reopen"[..]),
        "post-reopen write survived the second cycle"
    );
}

#[test]
fn checkpoint_bounds_the_live_log() {
    let disk = MemDisk::new();
    let (store, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk.clone());
    for i in 0..50 {
        store.put(&format!("k{i:03}"), &[i as u8; 64]);
    }
    let grown = disk.wal_bytes();
    let report = store.checkpoint().unwrap();
    assert!(report.performed);
    assert_eq!(report.wal_bytes_dropped, grown);
    assert_eq!(disk.wal_bytes(), 0, "all 50 records were covered");
    store.put("after", b"x");
    assert!(
        disk.wal_bytes() > 0,
        "suffix accumulates in the new segment"
    );
    assert!(disk.wal_bytes() < grown);

    let stats = store.ckpt_stats().expect("disk-backed store has ckpt tier");
    assert_eq!(stats.count, 1);
    assert_eq!(stats.wal_truncated_bytes, grown);
    assert_eq!(stats.last_cut, 50);
    assert_eq!(stats.duration_ns.count(), 1);
}

#[test]
fn checkpoint_with_nothing_new_is_skipped() {
    let disk = MemDisk::new();
    let (store, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk);
    store.put("k", b"v");
    assert!(store.checkpoint().unwrap().performed);
    let again = store.checkpoint().unwrap();
    assert!(!again.performed, "no new durable records since the cut");
    assert_eq!(again.cut, 1);
    assert_eq!(store.ckpt_stats().unwrap().count, 1);
}

#[test]
fn corrupt_current_snapshot_falls_back_to_previous() {
    let disk = MemDisk::new();
    let (store, _) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, disk.clone());
    store.put("old", b"1");
    store.checkpoint().unwrap(); // -> snapshot #1 (becomes .prev later)
    store.put("new", b"2");
    store.checkpoint().unwrap(); // -> snapshot #2 (current)
    drop(store);

    // Flip a byte in the current snapshot; all-or-nothing validation
    // rejects it and recovery falls back to the previous snapshot plus
    // a longer suffix — here the suffix segments covering "new" are
    // gone (truncated by checkpoint #2), so the chain rules discard the
    // stale-looking segments and the store recovers to snapshot #1.
    let img = disk.crash_image(disk.journal_len(), 0, false);
    let bytes = img.read_file("snapshot.cur").unwrap();
    img.truncate_file("snapshot.cur", bytes.len() - 1);
    let (re, report) = KvStore::open_on_disk(&cfg(), SyncPolicy::PerCommit, img);
    assert_eq!(report.snapshot_source, SnapshotSource::Previous);
    assert_eq!(report.snapshot_cut, 1);
    assert_eq!(re.get("old").as_deref(), Some(&b"1"[..]));
}

#[test]
fn volatile_and_single_stream_stores_report_unsupported() {
    let store = KvStore::open(KvConfig::volatile()).unwrap();
    let err = store.checkpoint().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    assert!(store.ckpt_stats().is_none());
}
