//! `SyncPolicy::Async`: commit/durability decoupling on the pooled
//! deferred executor.
//!
//! Under `Async` the store's runtime runs deferred WAL appends on a worker
//! pool: `put`/`write_batch` return at commit, and the group-commit leader
//! that pays the fsync is a pool worker. The shard locks are held by the
//! transaction's batch owner from commit until the append completes, so
//! the reader-visible contract is unchanged — a subscribing read never
//! observes an acked-but-volatile write. What changes is who waits:
//! callers that need durability block on a [`DeferHandle`] (or the
//! store-wide [`KvStore::sync`] barrier) instead of inside every write.

#![cfg(not(loom))]

use ad_kv::{KvConfig, KvStore, MemMedium, SyncPolicy, WriteBatch};
use std::sync::Arc;

fn async_store() -> (KvStore, MemMedium) {
    let mem = MemMedium::new();
    let (store, _) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::Async,
        Box::new(mem.clone()),
        &[],
    );
    (store, mem)
}

#[test]
fn handle_wait_means_durable() {
    let (store, mem) = async_store();
    let handle = store.put_async("k", b"v").expect("durable store");
    handle.wait(store.runtime());
    assert!(handle.is_done());
    // Durability, not just buffering: the record is inside the synced
    // prefix by the time the handle completes.
    assert!(!mem.synced().is_empty());
    assert_eq!(mem.synced().len(), mem.written().len());
    assert_eq!(store.wal_stats().unwrap().records, 1);
}

#[test]
fn reads_never_observe_acked_but_volatile_state() {
    // `get` subscribes to the key's shard, whose lock the deferred append
    // holds until the fsync lands — so a successful read implies the
    // write it saw is durable.
    let (store, mem) = async_store();
    store.put("k", b"v");
    assert_eq!(store.get("k").as_deref(), Some(&b"v"[..]));
    let stats = store.wal_stats().unwrap();
    assert_eq!(stats.records, 1, "read completed before durability");
    assert!(!mem.synced().is_empty());
}

#[test]
fn sync_is_a_durability_barrier() {
    let (store, mem) = async_store();
    for i in 0..20 {
        store.put(&format!("k{i}"), b"v");
    }
    store.sync();
    let stats = store.wal_stats().unwrap();
    assert_eq!(stats.records, 20);
    assert_eq!(mem.synced().len(), mem.written().len());
}

#[test]
fn batch_handle_tracks_the_whole_batch() {
    let (store, mem) = async_store();
    let handle = store
        .write_batch_async(&WriteBatch::new().put("a", b"1").put("b", b"2").delete("a"))
        .expect("durable store");
    handle.wait(store.runtime());
    assert_eq!(store.wal_stats().unwrap().records, 1, "one redo record");
    assert!(!mem.synced().is_empty());
    assert_eq!(store.get("b").as_deref(), Some(&b"2"[..]));
    assert_eq!(store.get("a"), None);
}

#[test]
fn fanout_of_async_puts_resolves_via_one_wait_all() {
    // A burst of independent async puts yields N handles; one `wait_all`
    // call is the durability barrier for the whole fan-out.
    let (store, mem) = async_store();
    let handles: Vec<_> = (0..10)
        .map(|i| {
            store
                .put_async(&format!("k{i}"), b"v")
                .expect("durable store")
        })
        .collect();
    let results = ad_defer::DeferHandle::wait_all(store.runtime(), &handles);
    assert_eq!(results.len(), 10);
    assert!(handles.iter().all(|h| h.is_done()));
    assert_eq!(store.wal_stats().unwrap().records, 10);
    // Durability, not just buffering: every appended byte is synced.
    assert_eq!(mem.synced().len(), mem.written().len());
}

#[test]
fn empty_or_volatile_writes_have_no_handle() {
    let (store, _) = async_store();
    assert!(store.write_batch_async(&WriteBatch::new()).is_none());
    let volatile = KvStore::open(KvConfig::volatile()).unwrap();
    assert!(volatile.put_async("k", b"v").is_none());
    assert_eq!(volatile.get("k").as_deref(), Some(&b"v"[..]));
    volatile.sync(); // no-op, must not block
}

#[test]
fn concurrent_async_writers_coalesce_fsyncs() {
    // Worker-led group commit still coalesces: a slow sync makes appends
    // pile up behind the in-flight leader.
    struct SlowSync(MemMedium);
    impl ad_kv::WalMedium for SlowSync {
        fn append(&mut self, data: &[u8]) {
            self.0.append(data);
        }
        fn sync(&mut self) {
            std::thread::sleep(std::time::Duration::from_millis(2));
            self.0.sync();
        }
    }

    let mem = MemMedium::new();
    let (store, _) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::Async,
        Box::new(SlowSync(mem.clone())),
        &[],
    );
    let store = Arc::new(store);
    std::thread::scope(|s| {
        for t in 0..8 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..10 {
                    store.put(&format!("t{t}k{i}"), b"v");
                }
            });
        }
    });
    store.sync();
    let stats = store.wal_stats().unwrap();
    assert_eq!(stats.records, 80);
    assert!(
        stats.batches < stats.records,
        "no coalescing: {} batches for {} records",
        stats.batches,
        stats.records
    );
    assert_eq!(mem.synced().len(), mem.written().len());
}

#[test]
fn reopen_after_sync_recovers_everything() {
    let (store, mem) = async_store();
    store.put("a", b"1");
    store.write_batch(&WriteBatch::new().put("b", b"2").put("c", b"3"));
    store.delete("a");
    store.sync();
    let before = store.dump();
    drop(store);

    let (reopened, report) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::Async,
        Box::new(MemMedium::new()),
        &mem.synced(),
    );
    assert_eq!(report.records, 3);
    assert!(!report.torn());
    assert_eq!(reopened.dump(), before);
}

#[test]
fn commit_latency_does_not_include_fsync() {
    // The headline behavior: with a slow medium, the async ack is fast and
    // the handle wait absorbs the fsync time.
    struct VerySlowSync(MemMedium);
    impl ad_kv::WalMedium for VerySlowSync {
        fn append(&mut self, data: &[u8]) {
            self.0.append(data);
        }
        fn sync(&mut self) {
            std::thread::sleep(std::time::Duration::from_millis(50));
            self.0.sync();
        }
    }

    let mem = MemMedium::new();
    let (store, _) = KvStore::open_on_medium(
        &KvConfig::default(),
        SyncPolicy::Async,
        Box::new(VerySlowSync(mem.clone())),
        &[],
    );
    let t0 = std::time::Instant::now();
    let handle = store.put_async("k", b"v").unwrap();
    let ack = t0.elapsed();
    handle.wait(store.runtime());
    let durable = t0.elapsed();
    assert!(
        ack < std::time::Duration::from_millis(25),
        "async ack should not pay the 50ms fsync (took {ack:?})"
    );
    assert!(durable >= std::time::Duration::from_millis(50));
}
