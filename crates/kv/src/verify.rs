//! Loom-style model of the durability protocol: group-commit appends vs.
//! crash-image recovery (`RUSTFLAGS="--cfg loom"`).
//!
//! The contract under test is the conjunction recovery relies on:
//!
//! 1. **Ack implies durable** — when [`Wal::append_durable`] returns, the
//!    record's bytes are inside the medium's *synced* prefix (the part of
//!    the log that survives any crash), no matter how appenders and the
//!    group-commit leader interleave.
//! 2. **Crash images are whole-record prefixes** — the synced prefix
//!    always scans cleanly (no torn record, contiguous sequence numbers),
//!    because leaders write a batch and advance the durable mark in one
//!    medium-lock critical section.
//!
//! [`group_commit_acks_are_durable`] checks both over every interleaving
//! the scheduler can find of two concurrent appenders plus a concurrent
//! observer taking crash images mid-flight.
//!
//! The regression model [`model_catches_ack_before_fsync`] re-creates the
//! classic WAL bug the protocol exists to prevent: an appender that acks
//! after `write` but leaves the `fsync` to a background flusher. Under
//! some schedules the flusher wins and the bug is invisible — the model
//! must still find the schedule where the ack races ahead of durability.
//! If it stops finding it, the green model has rotted into always-green.

use std::sync::Arc;

use ad_stm::{Runtime, TmConfig};
use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};

use crate::recover::{encode_redo, scan, ScanEnd};
use crate::wal::{frame_record, MemMedium, SyncPolicy, Wal, WalMedium};

fn group_commit_scenario(e: &mut Exec) {
    let mem = MemMedium::new();
    let wal = Arc::new(Wal::new(Box::new(mem.clone()), SyncPolicy::GroupCommit, 1));
    let rt = Arc::new(Runtime::new(TmConfig::stm()));

    for t in 0..2u64 {
        let (wal, rt, mem) = (Arc::clone(&wal), Arc::clone(&rt), mem.clone());
        e.spawn(move || {
            let payload = encode_redo(t + 1, &[(format!("k{t}"), Some(vec![t as u8]))]);
            let seq = wal.append_durable(&payload, &rt);
            // Ack implies durable: our record is in the synced prefix the
            // moment append_durable returns.
            let (_, report) = scan(&mem.synced(), 1);
            assert!(
                report.last_seq >= seq,
                "acked seq {seq} missing from durable prefix (last durable: {})",
                report.last_seq
            );
        });
    }

    // Crash observer: any mid-flight durable prefix is a clean log —
    // whole records, contiguous seqs, nothing torn.
    e.spawn(move || {
        for _ in 0..2 {
            let (records, report) = scan(&mem.synced(), 1);
            assert_eq!(
                report.end,
                ScanEnd::Clean,
                "durable prefix is not a whole-record log: {:?}",
                report.end
            );
            for (i, rec) in records.iter().enumerate() {
                assert_eq!(rec.seq, i as u64 + 1, "non-contiguous durable seqs");
            }
        }
    });
}

/// Green model: ack-implies-durable and clean crash images hold across
/// all explored interleavings of two appenders and an observer.
#[test]
fn group_commit_acks_are_durable() {
    check(
        "kv-wal-group-commit-durability",
        CheckOpts {
            seeds: 800,
            max_steps: 200_000,
        },
        group_commit_scenario,
    );
}

fn buggy_ack_scenario(e: &mut Exec) {
    let mem = MemMedium::new();

    // BUG (deliberate): write the record, then ack — leaving the fsync to
    // a background flusher, as a naive "async durability" WAL would.
    let mut writer_mem = mem.clone();
    let check_mem = mem.clone();
    e.spawn(move || {
        let mut framed = Vec::new();
        frame_record(
            &mut framed,
            1,
            &encode_redo(1, &[("k".into(), Some(vec![1]))]),
        );
        writer_mem.append(&framed);
        // "Ack": the caller is told the write is durable now.
        let (_, report) = scan(&check_mem.synced(), 1);
        assert!(
            report.last_seq >= 1,
            "acked seq 1 missing from durable prefix (last durable: {})",
            report.last_seq
        );
    });

    // Background flusher: syncs at its own pace. When it wins the race the
    // bug is masked; the model must find the schedule where it loses.
    let mut flusher_mem = mem;
    e.spawn(move || {
        flusher_mem.sync();
    });
}

/// Regression model: the ack-before-fsync bug must be caught. Guards the
/// green model's sensitivity — same assertion, known-bad protocol.
#[test]
fn model_catches_ack_before_fsync() {
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 200,
            max_steps: 50_000,
        },
        buggy_ack_scenario,
    );
    let (seed, msg) =
        violation.expect("the ack-before-fsync variant no longer races; re-tune the model");
    assert!(
        msg.contains("missing from durable prefix"),
        "expected a durability violation, got (seed {seed}): {msg}"
    );
}
