//! The write-ahead log: record framing, storage media, and the
//! group-commit coalescer.
//!
//! ## Framing
//!
//! Every redo record is framed as
//!
//! ```text
//! magic: u32 ("ADKV") | len: u32 | seq: u64 | crc: u32 | payload[len]
//! ```
//!
//! (little-endian, 20-byte header). `seq` numbers records contiguously
//! from 1; `crc` is CRC-32 (IEEE) over the payload. Recovery accepts the
//! longest prefix of well-formed, checksummed, contiguously-numbered
//! records and truncates the rest as the torn tail of a crashed append —
//! see [`crate::recover`].
//!
//! ## Group commit
//!
//! [`Wal::append_durable`] is called from *deferred operations*
//! (`atomic_defer`), after the calling transaction has committed, while
//! the shards it touched are still locked. Under
//! [`SyncPolicy::GroupCommit`] concurrent callers frame their records into
//! one shared pending buffer; the first to need durability becomes the
//! *leader*, takes the whole buffer, writes it as a single `write` +
//! `fsync`, and wakes the others — so N concurrently-committing
//! transactions cost one fsync, not N. Records enter the buffer in
//! `seq` order under the state lock, which also means WAL order agrees
//! with commit order for any two transactions that touched a common shard
//! (their deferred appends are serialized by the shard's `TxLock`).
//! [`SyncPolicy::PerCommit`] is the ablation baseline: every append pays
//! its own write + fsync, fully serialized.

use std::fs::File;
use std::io::Write;
use std::time::Instant;

use ad_stm::{EventKind, Runtime};
use ad_support::crc32::crc32;
use ad_support::hist::{Histogram, HistogramSnapshot};
use ad_support::sync::atomic::{AtomicU64, Ordering};
use ad_support::sync::{Condvar, Mutex};

/// Frame magic: `b"ADKV"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ADKV");
/// Frame header size in bytes (magic + len + seq + crc).
pub const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Upper bound on a record payload (sanity check during recovery scan:
/// a torn length field must not make the scanner index gigabytes away).
pub const MAX_PAYLOAD: usize = 1 << 28;

/// When the WAL calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Coalesce concurrently-committing transactions into one write +
    /// fsync (the default).
    GroupCommit,
    /// One write + fsync per record, fully serialized — the baseline that
    /// group commit is measured against.
    PerCommit,
    /// Group commit on a pooled deferred executor: the WAL side behaves
    /// exactly like [`SyncPolicy::GroupCommit`] (the blocking
    /// `append_durable` call simply runs on a pool worker, which becomes
    /// the group-commit leader), but the *store* built with this policy
    /// acks writes at commit and exposes durability through handles —
    /// see `KvStore::put_async` / `write_batch_async`.
    Async,
}

/// Where WAL bytes go. `File` is the real medium; tests and the loom
/// model substitute [`MemMedium`] so crash points can be injected
/// deterministically.
pub trait WalMedium: Send {
    /// Append `data` at the end of the log. Must not tear *observably*
    /// on return (the write call returns after the kernel accepted all
    /// bytes) — durability still requires [`WalMedium::sync`].
    fn append(&mut self, data: &[u8]);
    /// Block until every appended byte is durable.
    fn sync(&mut self);
}

/// The real thing: an append-mode file, synced with `fsync`.
pub struct FileMedium {
    file: File,
}

impl FileMedium {
    /// Wrap an already-positioned append-mode file.
    pub fn new(file: File) -> Self {
        FileMedium { file }
    }
}

impl WalMedium for FileMedium {
    fn append(&mut self, data: &[u8]) {
        self.file.write_all(data).expect("WAL append failed");
    }

    fn sync(&mut self) {
        self.file.sync_data().expect("WAL fsync failed");
    }
}

/// An in-memory medium with crash-point injection: it remembers which
/// prefix has been synced, so a test can ask "what would the disk hold if
/// we crashed right now?" — synced bytes survive for sure, unsynced bytes
/// survive only as the prefix the test chooses to keep.
#[derive(Clone, Default)]
pub struct MemMedium {
    inner: std::sync::Arc<Mutex<MemMediumInner>>,
}

#[derive(Default)]
struct MemMediumInner {
    written: Vec<u8>,
    synced_len: usize,
    syncs: u64,
}

impl MemMedium {
    /// New empty medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything appended so far (synced or not).
    pub fn written(&self) -> Vec<u8> {
        self.inner.lock().written.clone()
    }

    /// The durable prefix: what survives a crash for certain.
    pub fn synced(&self) -> Vec<u8> {
        let g = self.inner.lock();
        g.written[..g.synced_len].to_vec()
    }

    /// Number of [`WalMedium::sync`] calls so far.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// A crash image: the synced prefix plus the first `extra_unsynced`
    /// bytes of the unsynced tail (bytes handed to the kernel may or may
    /// not reach the platter before power loss — the test picks).
    pub fn crash_image(&self, extra_unsynced: usize) -> Vec<u8> {
        let g = self.inner.lock();
        let keep = (g.synced_len + extra_unsynced).min(g.written.len());
        g.written[..keep].to_vec()
    }
}

impl WalMedium for MemMedium {
    fn append(&mut self, data: &[u8]) {
        self.inner.lock().written.extend_from_slice(data);
    }

    fn sync(&mut self) {
        let mut g = self.inner.lock();
        g.synced_len = g.written.len();
        g.syncs += 1;
    }
}

/// Frame one record (header + payload) into `out`; returns the framed
/// length in bytes.
pub fn frame_record(out: &mut Vec<u8>, seq: u64, payload: &[u8]) -> usize {
    assert!(payload.len() <= MAX_PAYLOAD, "WAL payload too large");
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    HEADER_LEN + payload.len()
}

/// Group-commit state shared by all appenders (guarded by one mutex; the
/// condvar wakes waiters when `durable_seq` advances).
struct WalState {
    /// Framed records awaiting the next batch write.
    pending: Vec<u8>,
    /// Records currently framed into `pending`.
    pending_records: u64,
    /// Next sequence number to assign (first record is seq 1).
    next_seq: u64,
    /// Highest sequence number known durable.
    durable_seq: u64,
    /// A leader is currently writing + syncing a batch.
    leader_active: bool,
}

/// Cumulative WAL counters and latency histograms (all relaxed:
/// diagnostics, not synchronization).
#[derive(Default)]
struct WalCounters {
    records: AtomicU64,
    batches: AtomicU64,
    bytes: AtomicU64,
    /// `append_durable` total latency: framing + queueing + fsync wait, ns.
    append_ns: Histogram,
    /// Leader-side `write` + `fsync` latency per batch, ns.
    fsync_ns: Histogram,
}

/// A snapshot of the WAL's counters ([`Wal::stats`]), serializable with
/// the same hand-rolled JSON the rest of the workspace uses.
#[derive(Debug, Clone, Default)]
pub struct WalStats {
    /// Records made durable.
    pub records: u64,
    /// fsync batches issued (== fsync calls).
    pub batches: u64,
    /// Bytes written to the medium.
    pub bytes: u64,
    /// `append_durable` call latency (enqueue → durable ack), ns.
    pub append_ns: HistogramSnapshot,
    /// Batch write+fsync latency, ns.
    pub fsync_ns: HistogramSnapshot,
}

impl WalStats {
    /// Average records per fsync — the group-commit coalescing factor
    /// (1.0 means no coalescing happened).
    pub fn coalescing(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.records as f64 / self.batches as f64
        }
    }

    /// Stable-schema JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records\":{},\"batches\":{},\"bytes\":{},\"coalescing\":{:.2},\
             \"append_ns\":{},\"fsync_ns\":{}}}",
            self.records,
            self.batches,
            self.bytes,
            self.coalescing(),
            self.append_ns.to_json(),
            self.fsync_ns.to_json(),
        )
    }
}

/// The write-ahead log. Shared by every shard's deferred operations;
/// see the module docs for the coalescing protocol.
pub struct Wal {
    medium: Mutex<Box<dyn WalMedium>>,
    state: Mutex<WalState>,
    durable_cv: Condvar,
    sync_policy: SyncPolicy,
    counters: WalCounters,
}

impl Wal {
    /// Create a WAL over `medium`. `next_seq` is 1 for a fresh log, or
    /// `last_recovered_seq + 1` when appending after recovery.
    pub fn new(medium: Box<dyn WalMedium>, sync_policy: SyncPolicy, next_seq: u64) -> Self {
        assert!(next_seq >= 1);
        Wal {
            medium: Mutex::new(medium),
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_records: 0,
                next_seq,
                durable_seq: next_seq - 1,
                leader_active: false,
            }),
            durable_cv: Condvar::new(),
            sync_policy,
            counters: WalCounters::default(),
        }
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Append `payload` as the next record and block until it is durable
    /// (its covering fsync returned). Returns the record's sequence
    /// number. `rt` is the runtime whose observability timeline receives
    /// the `wal_append`/`wal_fsync` events.
    ///
    /// Called from deferred operations while the deferring transaction's
    /// shard locks are held — which is exactly what makes "ack after
    /// deferred fsync" atomic: no subscriber can observe the shard between
    /// the commit and the moment its redo record is on disk.
    pub fn append_durable(&self, payload: &[u8], rt: &Runtime) -> u64 {
        let t0 = Instant::now();
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let framed = frame_record(&mut st.pending, seq, payload);
        st.pending_records += 1;
        rt.trace_app(EventKind::WalAppend, framed as u64);

        match self.sync_policy {
            SyncPolicy::PerCommit => {
                // Serial baseline: write + sync our own record while
                // holding the state lock (state → medium lock order, same
                // as the group path's leader).
                let batch = std::mem::take(&mut st.pending);
                let records = std::mem::take(&mut st.pending_records);
                let ts = Instant::now();
                {
                    let mut m = self.medium.lock();
                    m.append(&batch);
                    m.sync();
                }
                self.note_batch(records, batch.len(), ts, rt);
                st.durable_seq = seq;
            }
            SyncPolicy::GroupCommit | SyncPolicy::Async => loop {
                if st.durable_seq >= seq {
                    break;
                }
                if !st.leader_active {
                    // Become leader: take everything framed so far (our
                    // record plus any concurrent appenders'), write and
                    // sync it as one batch.
                    st.leader_active = true;
                    let batch = std::mem::take(&mut st.pending);
                    let records = std::mem::take(&mut st.pending_records);
                    let batch_hi = st.next_seq - 1;
                    drop(st);
                    let ts = Instant::now();
                    {
                        let mut m = self.medium.lock();
                        m.append(&batch);
                        m.sync();
                    }
                    self.note_batch(records, batch.len(), ts, rt);
                    st = self.state.lock();
                    st.durable_seq = batch_hi;
                    st.leader_active = false;
                    self.durable_cv.notify_all();
                } else {
                    // A leader's batch is in flight; it may or may not
                    // include our record. Wait for durable_seq to move.
                    self.durable_cv.wait(&mut st);
                }
            },
        }
        drop(st);
        self.counters
            .append_ns
            .record(t0.elapsed().as_nanos() as u64);
        seq
    }

    fn note_batch(&self, records: u64, bytes: usize, started: Instant, rt: &Runtime) {
        self.counters
            .fsync_ns
            .record(started.elapsed().as_nanos() as u64);
        self.counters.records.fetch_add(records, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        rt.trace_app(EventKind::WalFsync, records);
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.state.lock().durable_seq
    }

    /// Snapshot the WAL counters and latency histograms.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.counters.records.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            append_ns: self.counters.append_ns.snapshot(),
            fsync_ns: self.counters.fsync_ns.snapshot(),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::{Runtime, TmConfig};
    use std::sync::Arc;

    #[test]
    fn frame_layout_is_as_documented() {
        let mut buf = Vec::new();
        let n = frame_record(&mut buf, 7, b"payload");
        assert_eq!(n, HEADER_LEN + 7);
        assert_eq!(buf.len(), n);
        assert_eq!(&buf[0..4], b"ADKV");
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(buf[8..16].try_into().unwrap()), 7);
        assert_eq!(
            u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            crc32(b"payload")
        );
        assert_eq!(&buf[20..], b"payload");
    }

    #[test]
    fn append_durable_syncs_before_returning() {
        let mem = MemMedium::new();
        let wal = Wal::new(Box::new(mem.clone()), SyncPolicy::GroupCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        let seq = wal.append_durable(b"rec-1", &rt);
        assert_eq!(seq, 1);
        // Durability, not just buffering: the synced prefix contains the
        // whole record by the time the call returns.
        let synced = mem.synced();
        assert_eq!(synced.len(), HEADER_LEN + 5);
        assert_eq!(wal.durable_seq(), 1);
        assert_eq!(wal.stats().records, 1);
        assert_eq!(wal.stats().batches, 1);
    }

    #[test]
    fn per_commit_pays_one_sync_per_record() {
        let mem = MemMedium::new();
        let wal = Wal::new(Box::new(mem.clone()), SyncPolicy::PerCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        for i in 0..5u64 {
            assert_eq!(wal.append_durable(format!("r{i}").as_bytes(), &rt), i + 1);
        }
        assert_eq!(mem.sync_count(), 5);
        let s = wal.stats();
        assert_eq!(s.records, 5);
        assert_eq!(s.batches, 5);
        assert!((s.coalescing() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_commit_coalesces_concurrent_appends() {
        // A medium whose sync dawdles long enough that concurrent
        // appenders pile up behind the in-flight leader — forcing at
        // least one multi-record batch.
        struct SlowSync(MemMedium);
        impl WalMedium for SlowSync {
            fn append(&mut self, data: &[u8]) {
                self.0.append(data);
            }
            fn sync(&mut self) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                self.0.sync();
            }
        }

        let mem = MemMedium::new();
        let wal = Arc::new(Wal::new(
            Box::new(SlowSync(mem.clone())),
            SyncPolicy::GroupCommit,
            1,
        ));
        let rt = Arc::new(Runtime::new(TmConfig::stm()));
        let threads = 8;
        let per = 10u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    for i in 0..per {
                        wal.append_durable(format!("t{t}i{i}").as_bytes(), &rt);
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, threads * per);
        assert!(
            stats.batches < stats.records,
            "no coalescing: {} batches for {} records",
            stats.batches,
            stats.records
        );
        assert_eq!(mem.sync_count(), stats.batches);
        // All bytes are durable.
        assert_eq!(mem.synced().len(), mem.written().len());
        assert_eq!(wal.durable_seq(), threads * per);
    }

    #[test]
    fn seq_numbers_resume_after_recovery_point() {
        let wal = Wal::new(Box::new(MemMedium::new()), SyncPolicy::GroupCommit, 42);
        let rt = Runtime::new(TmConfig::stm());
        assert_eq!(wal.durable_seq(), 41);
        assert_eq!(wal.append_durable(b"x", &rt), 42);
    }
}
