//! The write-ahead log: record framing, storage media, and the
//! group-commit coalescer.
//!
//! ## Framing
//!
//! Every redo record is framed as
//!
//! ```text
//! magic: u32 ("ADKV") | len: u32 | seq: u64 | crc: u32 | payload[len]
//! ```
//!
//! (little-endian, 20-byte header). `seq` numbers records contiguously
//! from 1; `crc` is CRC-32 (IEEE) over the payload. Recovery accepts the
//! longest prefix of well-formed, checksummed, contiguously-numbered
//! records and truncates the rest as the torn tail of a crashed append —
//! see [`crate::recover`].
//!
//! ## Group commit
//!
//! [`Wal::append_durable`] is called from *deferred operations*
//! (`atomic_defer`), after the calling transaction has committed, while
//! the shards it touched are still locked. Under
//! [`SyncPolicy::GroupCommit`] concurrent callers frame their records into
//! one shared pending buffer; the first to need durability becomes the
//! *leader*, takes the whole buffer, writes it as a single `write` +
//! `fsync`, and wakes the others — so N concurrently-committing
//! transactions cost one fsync, not N. Records enter the buffer in
//! `seq` order under the state lock, which also means WAL order agrees
//! with commit order for any two transactions that touched a common shard
//! (their deferred appends are serialized by the shard's `TxLock`).
//! [`SyncPolicy::PerCommit`] is the ablation baseline: every append pays
//! its own write + fsync, fully serialized.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use ad_stm::{EventKind, Runtime};
use ad_support::crc32::crc32;
use ad_support::hist::{Histogram, HistogramSnapshot};
use ad_support::sync::atomic::{AtomicU64, Ordering};
use ad_support::sync::{Condvar, Mutex};

/// Frame magic: `b"ADKV"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ADKV");
/// Frame header size in bytes (magic + len + seq + crc).
pub const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Upper bound on a record payload (sanity check during recovery scan:
/// a torn length field must not make the scanner index gigabytes away).
pub const MAX_PAYLOAD: usize = 1 << 28;

/// When the WAL calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Coalesce concurrently-committing transactions into one write +
    /// fsync (the default).
    GroupCommit,
    /// One write + fsync per record, fully serialized — the baseline that
    /// group commit is measured against.
    PerCommit,
    /// Group commit on a pooled deferred executor: the WAL side behaves
    /// exactly like [`SyncPolicy::GroupCommit`] (the blocking
    /// `append_durable` call simply runs on a pool worker, which becomes
    /// the group-commit leader), but the *store* built with this policy
    /// acks writes at commit and exposes durability through handles —
    /// see `KvStore::put_async` / `write_batch_async`.
    Async,
}

/// Where WAL bytes go. `File` is the real medium; tests and the loom
/// model substitute [`MemMedium`] so crash points can be injected
/// deterministically.
pub trait WalMedium: Send {
    /// Append `data` at the end of the log. Must not tear *observably*
    /// on return (the write call returns after the kernel accepted all
    /// bytes) — durability still requires [`WalMedium::sync`].
    fn append(&mut self, data: &[u8]);
    /// Block until every appended byte is durable.
    fn sync(&mut self);

    /// Start a fresh segment: subsequent appends go to a new log file
    /// whose first record will carry sequence `first_seq`. The previous
    /// segment is kept until [`WalMedium::drop_rotated`]. Media without
    /// segment support (the default) refuse — checkpointing is then
    /// unavailable but plain logging still works.
    ///
    /// Must be idempotent against the active segment: when the segment
    /// appends already go to is the one named for `first_seq` (it then
    /// holds no records — the cut is quiescent, so every durable record
    /// has seq `< first_seq`), the medium reuses it as the post-cut
    /// segment instead of re-creating it and queueing the live file for
    /// deletion. This happens after recovering from a crash between
    /// [`Wal::rotate`] and the snapshot publish, and when a checkpoint
    /// is retried after a failed publish with no intervening appends.
    fn rotate(&mut self, _first_seq: u64) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "this WAL medium does not support segment rotation",
        ))
    }

    /// Delete every pre-rotation segment (safe only after the covering
    /// snapshot has been durably published). Returns the bytes freed.
    fn drop_rotated(&mut self) -> io::Result<u64> {
        Ok(0)
    }
}

/// Path of the WAL segment whose first record is `first_seq`:
/// `{base}.seg{first_seq:020}` (zero-padded so lexical order is
/// sequence order). The initial segment is `base` itself.
pub(crate) fn segment_path(base: &Path, first_seq: u64) -> PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(format!(".seg{first_seq:020}"));
    PathBuf::from(s)
}

/// fsync the directory containing `path` so a just-created/renamed
/// entry survives a crash.
pub(crate) fn fsync_dir_of(path: &Path) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    File::open(dir.unwrap_or(Path::new(".")))?.sync_all()
}

/// The real thing: an append-mode file, synced with `fsync`. When built
/// with [`FileMedium::with_segments`] it also supports checkpoint-driven
/// segment rotation (`{base}.seg{first_seq}` files, dir-fsynced).
pub struct FileMedium {
    file: File,
    /// Segment naming base; `None` for a plain single-file medium.
    base: Option<PathBuf>,
    /// Path of the segment `file` appends to.
    current: Option<PathBuf>,
    /// Rotated-out segments awaiting [`WalMedium::drop_rotated`].
    old: Vec<PathBuf>,
}

impl FileMedium {
    /// Wrap an already-positioned append-mode file (no segment support).
    pub fn new(file: File) -> Self {
        FileMedium {
            file,
            base: None,
            current: None,
            old: Vec::new(),
        }
    }

    /// Wrap an already-positioned append-mode segment file at `current`,
    /// with rotation support under the naming base `base`. `old` lists
    /// earlier segments still on disk (recovery passes the segments that
    /// precede `current`); they are deleted by the next
    /// [`WalMedium::drop_rotated`].
    pub fn with_segments(file: File, base: PathBuf, current: PathBuf, old: Vec<PathBuf>) -> Self {
        FileMedium {
            file,
            base: Some(base),
            current: Some(current),
            old,
        }
    }
}

impl WalMedium for FileMedium {
    fn append(&mut self, data: &[u8]) {
        self.file.write_all(data).expect("WAL append failed");
    }

    fn sync(&mut self) {
        self.file.sync_data().expect("WAL fsync failed");
    }

    fn rotate(&mut self, first_seq: u64) -> io::Result<()> {
        let base = self.base.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "FileMedium::new has no segment base; use with_segments",
            )
        })?;
        let path = segment_path(base, first_seq);
        if self.current.as_deref() == Some(path.as_path()) {
            // Already appending to the post-cut segment (empty: no
            // durable record has seq >= first_seq). Re-opening it with
            // truncate and pushing it onto `old` would hand the live
            // segment to drop_rotated — reuse it instead.
            return Ok(());
        }
        let next = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        next.sync_all()?;
        fsync_dir_of(&path)?;
        let prev = std::mem::replace(&mut self.file, next);
        // The old segment's bytes were already synced per append policy;
        // a final sync_data is belt-and-braces before we stop writing it.
        prev.sync_data()?;
        if let Some(cur) = self.current.replace(path) {
            self.old.push(cur);
        }
        Ok(())
    }

    fn drop_rotated(&mut self) -> io::Result<u64> {
        let mut freed = 0u64;
        for p in self.old.drain(..) {
            if let Ok(md) = std::fs::metadata(&p) {
                freed += md.len();
            }
            match std::fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(base) = &self.base {
            fsync_dir_of(base)?;
        }
        Ok(freed)
    }
}

/// An in-memory medium with crash-point injection: it remembers which
/// prefix has been synced, so a test can ask "what would the disk hold if
/// we crashed right now?" — synced bytes survive for sure, unsynced bytes
/// survive only as the prefix the test chooses to keep.
#[derive(Clone, Default)]
pub struct MemMedium {
    inner: std::sync::Arc<Mutex<MemMediumInner>>,
}

#[derive(Default)]
struct MemMediumInner {
    written: Vec<u8>,
    synced_len: usize,
    syncs: u64,
}

impl MemMedium {
    /// New empty medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything appended so far (synced or not).
    pub fn written(&self) -> Vec<u8> {
        self.inner.lock().written.clone()
    }

    /// The durable prefix: what survives a crash for certain.
    pub fn synced(&self) -> Vec<u8> {
        let g = self.inner.lock();
        g.written[..g.synced_len].to_vec()
    }

    /// Number of [`WalMedium::sync`] calls so far.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// A crash image: the synced prefix plus the first `extra_unsynced`
    /// bytes of the unsynced tail (bytes handed to the kernel may or may
    /// not reach the platter before power loss — the test picks).
    pub fn crash_image(&self, extra_unsynced: usize) -> Vec<u8> {
        let g = self.inner.lock();
        let keep = (g.synced_len + extra_unsynced).min(g.written.len());
        g.written[..keep].to_vec()
    }
}

impl WalMedium for MemMedium {
    fn append(&mut self, data: &[u8]) {
        self.inner.lock().written.extend_from_slice(data);
    }

    fn sync(&mut self) {
        let mut g = self.inner.lock();
        g.synced_len = g.written.len();
        g.syncs += 1;
    }
}

/// Name of the initial WAL segment on a [`MemDisk`].
pub(crate) const MEMDISK_WAL: &str = "wal";
/// Name of the published snapshot on a [`MemDisk`].
pub(crate) const MEMDISK_SNAP_CUR: &str = "snapshot.cur";
/// Name of the previous snapshot on a [`MemDisk`].
pub(crate) const MEMDISK_SNAP_PREV: &str = "snapshot.prev";
/// Name of the in-flight snapshot on a [`MemDisk`].
pub(crate) const MEMDISK_SNAP_TMP: &str = "snapshot.tmp";

/// One durability-relevant operation on a [`MemDisk`], journaled so
/// tests can rebuild the disk as of any prefix — byte-exact crash
/// images across checkpoint boundaries. Metadata operations (create,
/// rename, delete) are treated as atomic and durable because the real
/// protocol fsyncs the directory after each one.
#[derive(Debug, Clone)]
enum DiskEvent {
    Append { file: String, bytes: Vec<u8> },
    Sync { file: String },
    Create { file: String },
    Rename { from: String, to: String },
    Delete { file: String },
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    written: Vec<u8>,
    synced_len: usize,
}

#[derive(Default)]
struct MemDiskInner {
    files: BTreeMap<String, MemFile>,
    /// The WAL segment appends currently go to.
    active: Option<String>,
    /// Rotated-out WAL segments awaiting `drop_rotated`.
    old_wal: Vec<String>,
    journal: Vec<DiskEvent>,
    /// Test affordance: while true, snapshot publishes block (so a test
    /// can hold a checkpoint in flight deterministically).
    gate_publishes: bool,
    publish_waiting: u64,
}

struct MemDiskShared {
    state: Mutex<MemDiskInner>,
    gate_cv: Condvar,
}

/// The multi-file sibling of [`MemMedium`]: an in-memory *disk* holding
/// WAL segments plus snapshot files, with per-file synced-prefix
/// tracking and an operation journal. Tests use the journal to rebuild
/// the disk as of any operation prefix — including a byte-level cut of
/// a trailing append — to enumerate every crash image across a
/// checkpoint boundary ([`MemDisk::crash_image`]).
#[derive(Clone)]
pub struct MemDisk {
    inner: std::sync::Arc<MemDiskShared>,
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDisk {
    /// A fresh disk with an empty initial WAL segment.
    pub fn new() -> Self {
        let disk = Self::blank();
        disk.create(MEMDISK_WAL);
        disk.inner.state.lock().active = Some(MEMDISK_WAL.to_string());
        disk
    }

    fn blank() -> Self {
        MemDisk {
            inner: std::sync::Arc::new(MemDiskShared {
                state: Mutex::new(MemDiskInner::default()),
                gate_cv: Condvar::new(),
            }),
        }
    }

    pub(crate) fn create(&self, name: &str) {
        let mut g = self.inner.state.lock();
        g.files.insert(name.to_string(), MemFile::default());
        g.journal.push(DiskEvent::Create {
            file: name.to_string(),
        });
    }

    pub(crate) fn append_file(&self, name: &str, bytes: &[u8]) {
        let mut g = self.inner.state.lock();
        g.files
            .get_mut(name)
            .expect("append to missing MemDisk file")
            .written
            .extend_from_slice(bytes);
        g.journal.push(DiskEvent::Append {
            file: name.to_string(),
            bytes: bytes.to_vec(),
        });
    }

    pub(crate) fn sync_file(&self, name: &str) {
        let mut g = self.inner.state.lock();
        let f = g.files.get_mut(name).expect("sync of missing MemDisk file");
        f.synced_len = f.written.len();
        g.journal.push(DiskEvent::Sync {
            file: name.to_string(),
        });
    }

    pub(crate) fn rename_file(&self, from: &str, to: &str) {
        let mut g = self.inner.state.lock();
        let f = g
            .files
            .remove(from)
            .expect("rename of missing MemDisk file");
        g.files.insert(to.to_string(), f);
        g.journal.push(DiskEvent::Rename {
            from: from.to_string(),
            to: to.to_string(),
        });
    }

    pub(crate) fn delete_file(&self, name: &str) -> u64 {
        let mut g = self.inner.state.lock();
        let freed = g.files.remove(name).map_or(0, |f| f.written.len() as u64);
        g.journal.push(DiskEvent::Delete {
            file: name.to_string(),
        });
        freed
    }

    /// Full contents of `name` (synced or not), or `None` if absent.
    pub fn read_file(&self, name: &str) -> Option<Vec<u8>> {
        self.inner
            .state
            .lock()
            .files
            .get(name)
            .map(|f| f.written.clone())
    }

    /// Names of all files currently on the disk, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.inner.state.lock().files.keys().cloned().collect()
    }

    /// Total bytes across live WAL segments (`wal*` files).
    pub fn wal_bytes(&self) -> u64 {
        let g = self.inner.state.lock();
        g.files
            .iter()
            .filter(|(n, _)| n.as_str() == MEMDISK_WAL || n.starts_with("wal.seg"))
            .map(|(_, f)| f.written.len() as u64)
            .sum()
    }

    /// Truncate `name` to `len` bytes — recovery's torn-tail cut, also
    /// public as a corruption affordance for recovery tests.
    pub fn truncate_file(&self, name: &str, len: usize) {
        let mut g = self.inner.state.lock();
        if let Some(f) = g.files.get_mut(name) {
            f.written.truncate(len);
            f.synced_len = f.synced_len.min(len);
        }
    }

    /// Point WAL appends at `segment` (recovery's "append after the last
    /// valid record"), creating it if missing.
    pub(crate) fn set_active_wal(&self, segment: &str, old: Vec<String>) {
        let mut g = self.inner.state.lock();
        if !g.files.contains_key(segment) {
            g.files.insert(segment.to_string(), MemFile::default());
            g.journal.push(DiskEvent::Create {
                file: segment.to_string(),
            });
        }
        g.active = Some(segment.to_string());
        g.old_wal = old;
    }

    /// Number of journaled disk operations so far.
    pub fn journal_len(&self) -> usize {
        self.inner.state.lock().journal.len()
    }

    /// If journal entry `i` is an append, its byte length (so tests can
    /// enumerate byte-level cuts inside it).
    pub fn event_append_len(&self, i: usize) -> Option<usize> {
        match self.inner.state.lock().journal.get(i) {
            Some(DiskEvent::Append { bytes, .. }) => Some(bytes.len()),
            _ => None,
        }
    }

    /// Rebuild the disk as it would look after a crash: journal entries
    /// `..events` fully applied, plus the first `partial_bytes` of entry
    /// `events` if that entry is an append. With `synced_only`, every
    /// file is additionally truncated to its synced prefix (the
    /// pessimistic image: unsynced bytes never reached the platter);
    /// otherwise unsynced bytes survive (the optimistic image). Metadata
    /// operations are always durable — the publish protocol fsyncs the
    /// directory after each.
    pub fn crash_image(&self, events: usize, partial_bytes: usize, synced_only: bool) -> MemDisk {
        let journal = self.inner.state.lock().journal.clone();
        let img = Self::blank();
        {
            let mut g = img.inner.state.lock();
            let apply = |g: &mut MemDiskInner, ev: &DiskEvent, limit: Option<usize>| match ev {
                DiskEvent::Create { file } => {
                    g.files.insert(file.clone(), MemFile::default());
                }
                DiskEvent::Append { file, bytes } => {
                    let take = limit.unwrap_or(bytes.len()).min(bytes.len());
                    if let Some(f) = g.files.get_mut(file) {
                        f.written.extend_from_slice(&bytes[..take]);
                    }
                }
                DiskEvent::Sync { file } => {
                    if let Some(f) = g.files.get_mut(file) {
                        f.synced_len = f.written.len();
                    }
                }
                DiskEvent::Rename { from, to } => {
                    if let Some(f) = g.files.remove(from) {
                        g.files.insert(to.clone(), f);
                    }
                }
                DiskEvent::Delete { file } => {
                    g.files.remove(file);
                }
            };
            for ev in journal.iter().take(events) {
                apply(&mut g, ev, None);
            }
            if let Some(ev @ DiskEvent::Append { .. }) = journal.get(events) {
                apply(&mut g, ev, Some(partial_bytes));
            }
            if synced_only {
                for f in g.files.values_mut() {
                    let keep = f.synced_len;
                    f.written.truncate(keep);
                }
            }
        }
        img
    }

    /// Hold all snapshot publishes: a checkpoint reaching its publish
    /// step blocks until [`MemDisk::release_publishes`].
    pub fn hold_publishes(&self) {
        self.inner.state.lock().gate_publishes = true;
    }

    /// Release held publishes and wake blocked checkpointers.
    pub fn release_publishes(&self) {
        self.inner.state.lock().gate_publishes = false;
        self.inner.gate_cv.notify_all();
    }

    /// True while at least one publish is blocked on the gate.
    pub fn publish_blocked(&self) -> bool {
        self.inner.state.lock().publish_waiting > 0
    }

    /// Block the calling checkpointer while the publish gate is held.
    pub(crate) fn await_publish_gate(&self) {
        let mut g = self.inner.state.lock();
        if g.gate_publishes {
            g.publish_waiting += 1;
            while g.gate_publishes {
                self.inner.gate_cv.wait(&mut g);
            }
            g.publish_waiting -= 1;
        }
    }
}

impl WalMedium for MemDisk {
    fn append(&mut self, data: &[u8]) {
        let name = self
            .inner
            .state
            .lock()
            .active
            .clone()
            .expect("MemDisk has no active WAL segment");
        self.append_file(&name, data);
    }

    fn sync(&mut self) {
        let name = self
            .inner
            .state
            .lock()
            .active
            .clone()
            .expect("MemDisk has no active WAL segment");
        self.sync_file(&name);
    }

    fn rotate(&mut self, first_seq: u64) -> io::Result<()> {
        let name = format!("wal.seg{first_seq:020}");
        if self.inner.state.lock().active.as_deref() == Some(name.as_str()) {
            // Already appending to the post-cut segment (see the trait
            // docs): re-creating it would wipe it and queue the live
            // segment for deletion.
            return Ok(());
        }
        self.create(&name);
        let mut g = self.inner.state.lock();
        if let Some(prev) = g.active.replace(name) {
            g.old_wal.push(prev);
        }
        Ok(())
    }

    fn drop_rotated(&mut self) -> io::Result<u64> {
        let old = std::mem::take(&mut self.inner.state.lock().old_wal);
        let mut freed = 0;
        for name in old {
            freed += self.delete_file(&name);
        }
        Ok(freed)
    }
}

/// Frame one record (header + payload) into `out`; returns the framed
/// length in bytes.
pub fn frame_record(out: &mut Vec<u8>, seq: u64, payload: &[u8]) -> usize {
    assert!(payload.len() <= MAX_PAYLOAD, "WAL payload too large");
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    HEADER_LEN + payload.len()
}

/// Group-commit state shared by all appenders (guarded by one mutex; the
/// condvar wakes waiters when `durable_seq` advances).
struct WalState {
    /// Framed records awaiting the next batch write.
    pending: Vec<u8>,
    /// Records currently framed into `pending`.
    pending_records: u64,
    /// Next sequence number to assign (first record is seq 1).
    next_seq: u64,
    /// Highest sequence number known durable.
    durable_seq: u64,
    /// A leader is currently writing + syncing a batch.
    leader_active: bool,
}

/// Cumulative WAL counters and latency histograms (all relaxed:
/// diagnostics, not synchronization).
#[derive(Default)]
struct WalCounters {
    records: AtomicU64,
    batches: AtomicU64,
    bytes: AtomicU64,
    /// `append_durable` total latency: framing + queueing + fsync wait, ns.
    append_ns: Histogram,
    /// Leader-side `write` + `fsync` latency per batch, ns.
    fsync_ns: Histogram,
}

/// A snapshot of the WAL's counters ([`Wal::stats`]), serializable with
/// the same hand-rolled JSON the rest of the workspace uses.
#[derive(Debug, Clone, Default)]
pub struct WalStats {
    /// Records made durable.
    pub records: u64,
    /// fsync batches issued (== fsync calls).
    pub batches: u64,
    /// Bytes written to the medium.
    pub bytes: u64,
    /// `append_durable` call latency (enqueue → durable ack), ns.
    pub append_ns: HistogramSnapshot,
    /// Batch write+fsync latency, ns.
    pub fsync_ns: HistogramSnapshot,
}

impl WalStats {
    /// Average records per fsync — the group-commit coalescing factor
    /// (1.0 means no coalescing happened).
    pub fn coalescing(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.records as f64 / self.batches as f64
        }
    }

    /// Stable-schema JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records\":{},\"batches\":{},\"bytes\":{},\"coalescing\":{:.2},\
             \"append_ns\":{},\"fsync_ns\":{}}}",
            self.records,
            self.batches,
            self.bytes,
            self.coalescing(),
            self.append_ns.to_json(),
            self.fsync_ns.to_json(),
        )
    }
}

/// The write-ahead log. Shared by every shard's deferred operations;
/// see the module docs for the coalescing protocol.
pub struct Wal {
    medium: Mutex<Box<dyn WalMedium>>,
    state: Mutex<WalState>,
    durable_cv: Condvar,
    sync_policy: SyncPolicy,
    counters: WalCounters,
}

impl Wal {
    /// Create a WAL over `medium`. `next_seq` is 1 for a fresh log, or
    /// `last_recovered_seq + 1` when appending after recovery.
    pub fn new(medium: Box<dyn WalMedium>, sync_policy: SyncPolicy, next_seq: u64) -> Self {
        assert!(next_seq >= 1);
        Wal {
            medium: Mutex::new(medium),
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_records: 0,
                next_seq,
                durable_seq: next_seq - 1,
                leader_active: false,
            }),
            durable_cv: Condvar::new(),
            sync_policy,
            counters: WalCounters::default(),
        }
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Append `payload` as the next record and block until it is durable
    /// (its covering fsync returned). Returns the record's sequence
    /// number. `rt` is the runtime whose observability timeline receives
    /// the `wal_append`/`wal_fsync` events.
    ///
    /// Called from deferred operations while the deferring transaction's
    /// shard locks are held — which is exactly what makes "ack after
    /// deferred fsync" atomic: no subscriber can observe the shard between
    /// the commit and the moment its redo record is on disk.
    pub fn append_durable(&self, payload: &[u8], rt: &Runtime) -> u64 {
        let t0 = Instant::now();
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let framed = frame_record(&mut st.pending, seq, payload);
        st.pending_records += 1;
        rt.trace_app(EventKind::WalAppend, framed as u64);

        match self.sync_policy {
            SyncPolicy::PerCommit => {
                // Serial baseline: write + sync our own record while
                // holding the state lock (state → medium lock order, same
                // as the group path's leader).
                let batch = std::mem::take(&mut st.pending);
                let records = std::mem::take(&mut st.pending_records);
                let ts = Instant::now();
                {
                    let mut m = self.medium.lock();
                    m.append(&batch);
                    m.sync();
                }
                self.note_batch(records, batch.len(), ts, rt);
                st.durable_seq = seq;
            }
            SyncPolicy::GroupCommit | SyncPolicy::Async => loop {
                if st.durable_seq >= seq {
                    break;
                }
                if !st.leader_active {
                    // Become leader: take everything framed so far (our
                    // record plus any concurrent appenders'), write and
                    // sync it as one batch.
                    st.leader_active = true;
                    let batch = std::mem::take(&mut st.pending);
                    let records = std::mem::take(&mut st.pending_records);
                    let batch_hi = st.next_seq - 1;
                    drop(st);
                    let ts = Instant::now();
                    {
                        let mut m = self.medium.lock();
                        m.append(&batch);
                        m.sync();
                    }
                    self.note_batch(records, batch.len(), ts, rt);
                    st = self.state.lock();
                    st.durable_seq = batch_hi;
                    st.leader_active = false;
                    self.durable_cv.notify_all();
                } else {
                    // A leader's batch is in flight; it may or may not
                    // include our record. Wait for durable_seq to move.
                    self.durable_cv.wait(&mut st);
                }
            },
        }
        drop(st);
        self.counters
            .append_ns
            .record(t0.elapsed().as_nanos() as u64);
        seq
    }

    fn note_batch(&self, records: u64, bytes: usize, started: Instant, rt: &Runtime) {
        self.counters
            .fsync_ns
            .record(started.elapsed().as_nanos() as u64);
        self.counters.records.fetch_add(records, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        rt.trace_app(EventKind::WalFsync, records);
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.state.lock().durable_seq
    }

    /// Rotate the log at a quiescent cut: waits out any in-flight group
    /// leader, then starts a fresh segment whose first record will be
    /// `cut + 1`. Returns the cut — the highest durable sequence; every
    /// record `<= cut` is in pre-rotation segments, every record `> cut`
    /// (including any already framed into the pending buffer) lands in
    /// the new segment. The old segments survive until
    /// [`Wal::drop_rotated`].
    pub fn rotate(&self) -> io::Result<u64> {
        let mut st = self.state.lock();
        // Wait out an in-flight leader: once none is active, every
        // pending framed record has seq > durable_seq, so the cut is
        // exact. (PerCommit appends hold the state lock throughout, so
        // holding it here is already exclusive.)
        while st.leader_active {
            self.durable_cv.wait(&mut st);
        }
        let cut = st.durable_seq;
        {
            // state → medium lock order, same as the append paths.
            let mut m = self.medium.lock();
            m.rotate(cut + 1)?;
        }
        Ok(cut)
    }

    /// Delete pre-rotation segments (call only after the snapshot
    /// covering them is durably published). Returns bytes freed.
    pub fn drop_rotated(&self) -> io::Result<u64> {
        self.medium.lock().drop_rotated()
    }

    /// Cumulative records appended (relaxed; for checkpoint triggers).
    pub fn records_appended(&self) -> u64 {
        self.counters.records.load(Ordering::Relaxed)
    }

    /// Cumulative bytes appended (relaxed; for checkpoint triggers).
    pub fn bytes_appended(&self) -> u64 {
        self.counters.bytes.load(Ordering::Relaxed)
    }

    /// Snapshot the WAL counters and latency histograms.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.counters.records.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            append_ns: self.counters.append_ns.snapshot(),
            fsync_ns: self.counters.fsync_ns.snapshot(),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::{Runtime, TmConfig};
    use std::sync::Arc;

    #[test]
    fn frame_layout_is_as_documented() {
        let mut buf = Vec::new();
        let n = frame_record(&mut buf, 7, b"payload");
        assert_eq!(n, HEADER_LEN + 7);
        assert_eq!(buf.len(), n);
        assert_eq!(&buf[0..4], b"ADKV");
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(buf[8..16].try_into().unwrap()), 7);
        assert_eq!(
            u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            crc32(b"payload")
        );
        assert_eq!(&buf[20..], b"payload");
    }

    #[test]
    fn append_durable_syncs_before_returning() {
        let mem = MemMedium::new();
        let wal = Wal::new(Box::new(mem.clone()), SyncPolicy::GroupCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        let seq = wal.append_durable(b"rec-1", &rt);
        assert_eq!(seq, 1);
        // Durability, not just buffering: the synced prefix contains the
        // whole record by the time the call returns.
        let synced = mem.synced();
        assert_eq!(synced.len(), HEADER_LEN + 5);
        assert_eq!(wal.durable_seq(), 1);
        assert_eq!(wal.stats().records, 1);
        assert_eq!(wal.stats().batches, 1);
    }

    #[test]
    fn per_commit_pays_one_sync_per_record() {
        let mem = MemMedium::new();
        let wal = Wal::new(Box::new(mem.clone()), SyncPolicy::PerCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        for i in 0..5u64 {
            assert_eq!(wal.append_durable(format!("r{i}").as_bytes(), &rt), i + 1);
        }
        assert_eq!(mem.sync_count(), 5);
        let s = wal.stats();
        assert_eq!(s.records, 5);
        assert_eq!(s.batches, 5);
        assert!((s.coalescing() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_commit_coalesces_concurrent_appends() {
        // A medium whose sync dawdles long enough that concurrent
        // appenders pile up behind the in-flight leader — forcing at
        // least one multi-record batch.
        struct SlowSync(MemMedium);
        impl WalMedium for SlowSync {
            fn append(&mut self, data: &[u8]) {
                self.0.append(data);
            }
            fn sync(&mut self) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                self.0.sync();
            }
        }

        let mem = MemMedium::new();
        let wal = Arc::new(Wal::new(
            Box::new(SlowSync(mem.clone())),
            SyncPolicy::GroupCommit,
            1,
        ));
        let rt = Arc::new(Runtime::new(TmConfig::stm()));
        let threads = 8;
        let per = 10u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    for i in 0..per {
                        wal.append_durable(format!("t{t}i{i}").as_bytes(), &rt);
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, threads * per);
        assert!(
            stats.batches < stats.records,
            "no coalescing: {} batches for {} records",
            stats.batches,
            stats.records
        );
        assert_eq!(mem.sync_count(), stats.batches);
        // All bytes are durable.
        assert_eq!(mem.synced().len(), mem.written().len());
        assert_eq!(wal.durable_seq(), threads * per);
    }

    #[test]
    fn seq_numbers_resume_after_recovery_point() {
        let wal = Wal::new(Box::new(MemMedium::new()), SyncPolicy::GroupCommit, 42);
        let rt = Runtime::new(TmConfig::stm());
        assert_eq!(wal.durable_seq(), 41);
        assert_eq!(wal.append_durable(b"x", &rt), 42);
    }

    #[test]
    fn rotation_moves_appends_to_a_new_segment_and_drop_frees_old() {
        let disk = MemDisk::new();
        let wal = Wal::new(Box::new(disk.clone()), SyncPolicy::GroupCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        wal.append_durable(b"before-1", &rt);
        wal.append_durable(b"before-2", &rt);

        let cut = wal.rotate().unwrap();
        assert_eq!(cut, 2);
        wal.append_durable(b"after-3", &rt);

        let seg = "wal.seg00000000000000000003";
        let old = disk.read_file(MEMDISK_WAL).unwrap();
        let new = disk.read_file(seg).unwrap();
        assert!(!old.is_empty() && !new.is_empty());
        // Record 3 is only in the new segment.
        let find = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
        assert!(find(&new, b"after-3") && !find(&old, b"after-3"));

        let freed = wal.drop_rotated().unwrap();
        assert_eq!(freed, old.len() as u64);
        assert!(disk.read_file(MEMDISK_WAL).is_none(), "old segment deleted");
        assert_eq!(disk.read_file(seg).unwrap(), new);
    }

    #[test]
    fn re_rotating_at_the_same_cut_reuses_the_active_segment() {
        let disk = MemDisk::new();
        let wal = Wal::new(Box::new(disk.clone()), SyncPolicy::GroupCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        wal.append_durable(b"r1", &rt);
        assert_eq!(wal.rotate().unwrap(), 1);
        // Checkpoint retry after a failed publish (no intervening
        // appends): the second rotate targets the segment appends
        // already go to and must not queue it for deletion.
        assert_eq!(wal.rotate().unwrap(), 1);
        let seg = "wal.seg00000000000000000002";
        assert!(disk.read_file(seg).is_some());
        let freed = wal.drop_rotated().unwrap();
        assert!(freed > 0, "the pre-cut segment is still reclaimed");
        assert!(
            disk.read_file(seg).is_some(),
            "active segment survived drop_rotated"
        );
        // The WAL is still writable on the surviving segment.
        wal.append_durable(b"r2", &rt);
        assert!(!disk.read_file(seg).unwrap().is_empty());
    }

    #[test]
    fn rotate_is_unsupported_on_plain_media() {
        let wal = Wal::new(Box::new(MemMedium::new()), SyncPolicy::GroupCommit, 1);
        let err = wal.rotate().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }

    #[test]
    fn memdisk_crash_images_replay_the_journal() {
        let disk = MemDisk::new();
        let wal = Wal::new(Box::new(disk.clone()), SyncPolicy::GroupCommit, 1);
        let rt = Runtime::new(TmConfig::stm());
        wal.append_durable(b"abc", &rt);
        let n = disk.journal_len();
        wal.append_durable(b"def", &rt);

        // Optimistic image mid-way through the second append keeps a
        // byte-level prefix of it; pessimistic image drops unsynced bytes.
        let len2 = disk.event_append_len(n).unwrap();
        let img = disk.crash_image(n, len2 / 2, false);
        let full = disk.read_file(MEMDISK_WAL).unwrap();
        assert_eq!(
            img.read_file(MEMDISK_WAL).unwrap(),
            full[..full.len() - (len2 - len2 / 2)].to_vec()
        );
        let pess = disk.crash_image(n, len2 / 2, true);
        let first_rec_len = HEADER_LEN + 3;
        assert_eq!(pess.read_file(MEMDISK_WAL).unwrap().len(), first_rec_len);
    }
}
