//! # ad-kv — a durable transactional key-value store built on atomic deferral
//!
//! The paper's headline use case (§5.2, "transactional I/O") turned into a
//! working subsystem: a sharded in-memory KV store whose mutating
//! transactions are made **durable** with `atomic_defer` instead of
//! irrevocability.
//!
//! ## How a write becomes durable
//!
//! 1. The client's transaction updates the `TVar` buckets of the shards it
//!    touches (each shard is a [`ad_defer::Defer`]-wrapped object, so every
//!    access subscribes to the shard's implicit `TxLock`).
//! 2. The same transaction calls `atomic_defer` over the touched shards
//!    with an operation that appends the pre-encoded redo record to the
//!    write-ahead log and waits for the covering `fsync`.
//! 3. At commit the shard locks become visible atomically with the
//!    updates; the deferred append then runs *outside* the transaction —
//!    no quiescence stall, no serial-mode irrevocability — while the locks
//!    keep every other transaction from observing the not-yet-durable
//!    state. The client call returns only after the deferred operation
//!    (and hence the fsync) completed: **ack implies durable**.
//!
//! Concurrent committers coalesce: the WAL's group-commit protocol batches
//! all records pending at the moment a leader syncs, so N concurrent
//! commits cost one `fsync`, not N ([`wal`]).
//!
//! ## Crash recovery
//!
//! [`KvStore::open`] runs two-tier recovery: load the newest valid
//! checkpoint snapshot (CRC-validated, all-or-nothing, falling back to
//! the previous snapshot), then scan the WAL segments, truncate the torn
//! tail (checksums + contiguous sequence numbers decide validity), and
//! replay only the suffix past the snapshot's cut. One redo record is one
//! transaction, so recovery can never resurrect half of a multi-key
//! write — see [`recover`], [`checkpoint`], and the crash-matrix tests in
//! `tests/recovery.rs` and `tests/ckpt_recovery.rs`.
//!
//! ## Bounding the log
//!
//! Without checkpoints the WAL grows forever and recovery replays
//! everything. [`KvStore::checkpoint`] (or [`CkptPolicy::Auto`]) publishes
//! an atomic snapshot of the committed-durable state — built from the
//! [`memtable`], which the same deferred ops populate post-fsync — and
//! then drops the WAL segments the snapshot covers: bounded log, bounded
//! recovery ([`checkpoint`]).
//!
//! ## Example
//!
//! ```
//! use ad_kv::{KvConfig, KvStore, WriteBatch};
//!
//! let store = KvStore::open(KvConfig::volatile()).unwrap();
//! store.put("alice", b"100");
//! store.write_batch(&WriteBatch::new().put("bob", b"50").delete("alice"));
//! assert_eq!(store.get("bob").as_deref(), Some(&b"50"[..]));
//! assert_eq!(store.get("alice"), None);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod memtable;
pub mod recover;
pub mod store;
pub mod wal;

/// Loom-style model of the durability protocol: concurrent group-commit
/// appenders vs. a crash-point observer recovering arbitrary disk images.
/// Compiled only under `RUSTFLAGS="--cfg loom"` test builds — see
/// VERIFICATION.md.
#[cfg(all(test, loom))]
mod verify;

pub use checkpoint::{
    Checkpointer, CkptPolicy, CkptReport, CkptStats, FileSnapshots, SnapshotStore,
};
pub use memtable::MemTable;
pub use recover::{RecoveryReport, RedoKind, RedoOps, RedoRecord, ScanEnd, SnapshotSource};
pub use store::{Durability, KvConfig, KvStore, RemoteSlice, WriteBatch};
pub use wal::{FileMedium, MemDisk, MemMedium, SyncPolicy, Wal, WalMedium, WalStats};

// Re-exported so connection-facing callers (`ad-net`) can name the handle
// the `*_async` write methods return without depending on `ad-defer`.
pub use ad_defer::DeferHandle;
