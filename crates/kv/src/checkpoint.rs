//! Checkpointing: turn the durable tier from "append-only log with
//! replay" into `snapshot + WAL suffix`, with bounded log size and
//! recovery proportional to the suffix.
//!
//! ## Snapshot format
//!
//! ```text
//! header:  magic u32 ("ADSN") | version u32 (1)
//! record:  klen u32 | vlen u32 | key[klen] | value[vlen] | crc u32
//! footer:  magic u32 ("ADSF") | cut u64 | count u64 | crc u32
//! ```
//!
//! Little-endian throughout. Each record's `crc` is CRC-32 (IEEE) over
//! `klen | vlen | key | value`; the footer's is over `cut | count`. The
//! footer carries the WAL *cut*: the snapshot is exactly the committed
//! state produced by records `1..=cut`, so recovery replays only
//! `seq > cut`. Unlike the WAL (longest-valid-prefix), snapshot
//! validation is all-or-nothing — a snapshot missing its footer or
//! failing any CRC is rejected entirely and recovery falls back to the
//! previous one.
//!
//! ## Publish protocol (never write in place)
//!
//! 1. write the serialized snapshot to `snapshot.tmp`, fsync it;
//! 2. rename `snapshot.cur` → `snapshot.prev` (keep one fallback);
//! 3. rename `snapshot.tmp` → `snapshot.cur` (atomic publish);
//! 4. fsync the directory;
//! 5. only then delete the WAL segments the snapshot covers.
//!
//! A crash anywhere in that sequence leaves either the old pair (steps
//! 1–2) or the new snapshot plus not-yet-deleted segments (steps 3–5);
//! both recover to a committed prefix — see the crash matrix in
//! `tests/ckpt_recovery.rs` and DESIGN.md §13.
//!
//! ## Quiescent cut
//!
//! The cut is `durable_seq` taken by [`Wal::rotate`] with no group
//! leader in flight, so segment contents split exactly at the cut; the
//! checkpointer then waits until the memtable has applied everything up
//! to the cut ([`MemTable::wait_applied_through`]) before freezing.
//! Every applier of a record `<= cut` is already past its fsync, so the
//! wait is bounded and never deadlocks — the snapshot is taken at rest
//! with respect to the cut, never racing live writers (the safe-
//! privatization discipline, DESIGN.md §13.3).

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ad_stm::{EventKind, Runtime};
use ad_support::crc32::crc32;
use ad_support::hist::{Histogram, HistogramSnapshot};
use ad_support::sync::atomic::{AtomicU64, Ordering};
use ad_support::sync::Mutex;

use crate::memtable::MemTable;
use crate::wal::{fsync_dir_of, Wal, MEMDISK_SNAP_CUR, MEMDISK_SNAP_PREV, MEMDISK_SNAP_TMP};
use crate::MemDisk;

/// Snapshot header magic: `b"ADSN"` little-endian.
pub const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"ADSN");
/// Snapshot footer magic: `b"ADSF"` little-endian. Greater than any
/// sane `klen`, so the decoder can tell footer from record.
pub const SNAP_FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"ADSF");
/// Snapshot format version.
pub const SNAP_VERSION: u32 = 1;
/// Sanity bound on snapshot key/value lengths (same spirit as
/// [`crate::wal::MAX_PAYLOAD`]).
const SNAP_MAX_FIELD: u32 = 1 << 28;

/// Serialize the committed state `map` as of WAL cut `cut`.
pub fn encode_snapshot<'a, I>(cut: u64, entries: I) -> Vec<u8>
where
    I: IntoIterator<Item = (&'a Arc<str>, &'a Arc<[u8]>)>,
{
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    let mut count = 0u64;
    for (k, v) in entries {
        let rec_start = out.len();
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(v);
        let crc = crc32(&out[rec_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        count += 1;
    }
    out.extend_from_slice(&SNAP_FOOTER_MAGIC.to_le_bytes());
    let foot_start = out.len();
    out.extend_from_slice(&cut.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    let crc = crc32(&out[foot_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and validate a snapshot. All-or-nothing: any CRC failure,
/// truncation, count mismatch, or missing footer rejects the whole
/// snapshot (`None`) and the caller falls back to the previous one.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(u64, crate::memtable::KeyMap)> {
    fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Option<&'a [u8]> {
        let end = at.checked_add(n)?;
        let s = bytes.get(*at..end)?;
        *at = end;
        Some(s)
    }
    fn u32_at(bytes: &[u8], at: &mut usize) -> Option<u32> {
        Some(u32::from_le_bytes(take(bytes, at, 4)?.try_into().ok()?))
    }
    fn u64_at(bytes: &[u8], at: &mut usize) -> Option<u64> {
        Some(u64::from_le_bytes(take(bytes, at, 8)?.try_into().ok()?))
    }

    let mut at = 0usize;
    if u32_at(bytes, &mut at)? != SNAP_MAGIC || u32_at(bytes, &mut at)? != SNAP_VERSION {
        return None;
    }
    let mut map = std::collections::BTreeMap::new();
    let mut count = 0u64;
    loop {
        let rec_start = at;
        let first = u32_at(bytes, &mut at)?;
        if first == SNAP_FOOTER_MAGIC {
            let foot_start = at;
            let cut = u64_at(bytes, &mut at)?;
            let n = u64_at(bytes, &mut at)?;
            let crc = u32_at(bytes, &mut at)?;
            if crc != crc32(&bytes[foot_start..foot_start + 16]) || n != count || at != bytes.len()
            {
                return None;
            }
            return Some((cut, map));
        }
        let klen = first;
        let vlen = u32_at(bytes, &mut at)?;
        if klen >= SNAP_MAX_FIELD || vlen >= SNAP_MAX_FIELD {
            return None;
        }
        let key = std::str::from_utf8(take(bytes, &mut at, klen as usize)?).ok()?;
        let key: Arc<str> = Arc::from(key);
        let value: Arc<[u8]> = Arc::from(take(bytes, &mut at, vlen as usize)?);
        let crc = u32_at(bytes, &mut at)?;
        if crc != crc32(&bytes[rec_start..at - 4]) {
            return None;
        }
        map.insert(key, value);
        count += 1;
    }
}

/// Where published snapshots live. The store is handed the fully
/// serialized bytes and must make them the new `snapshot.cur` via the
/// write-tmp / fsync / rename / fsync-dir protocol — never in place.
pub trait SnapshotStore: Send {
    /// Durably publish `bytes` as the current snapshot, demoting the
    /// old current to the previous slot.
    fn write_and_publish(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// Snapshot file paths derived from the WAL base path `base`:
/// `{base}.ckpt.tmp` / `.cur` / `.prev`.
pub(crate) fn snapshot_paths(base: &std::path::Path) -> (PathBuf, PathBuf, PathBuf) {
    let with = |suffix: &str| {
        let mut s = base.as_os_str().to_os_string();
        s.push(suffix);
        PathBuf::from(s)
    };
    (with(".ckpt.tmp"), with(".ckpt.cur"), with(".ckpt.prev"))
}

/// File-backed [`SnapshotStore`] beside the WAL at `base`.
pub struct FileSnapshots {
    base: PathBuf,
}

impl FileSnapshots {
    /// Snapshots named `{base}.ckpt.*`.
    pub fn new(base: PathBuf) -> Self {
        FileSnapshots { base }
    }
}

impl SnapshotStore for FileSnapshots {
    fn write_and_publish(&mut self, bytes: &[u8]) -> io::Result<()> {
        let (tmp, cur, prev) = snapshot_paths(&self.base);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        if cur.exists() {
            std::fs::rename(&cur, &prev)?;
        }
        std::fs::rename(&tmp, &cur)?;
        fsync_dir_of(&cur)
    }
}

impl SnapshotStore for MemDisk {
    fn write_and_publish(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.await_publish_gate();
        self.create(MEMDISK_SNAP_TMP);
        self.append_file(MEMDISK_SNAP_TMP, bytes);
        self.sync_file(MEMDISK_SNAP_TMP);
        if self.read_file(MEMDISK_SNAP_CUR).is_some() {
            self.rename_file(MEMDISK_SNAP_CUR, MEMDISK_SNAP_PREV);
        }
        self.rename_file(MEMDISK_SNAP_TMP, MEMDISK_SNAP_CUR);
        Ok(())
    }
}

/// When checkpoints run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptPolicy {
    /// Only when [`crate::KvStore::checkpoint`] is called.
    Manual,
    /// A background thread checkpoints whenever the WAL has grown past
    /// either threshold since the last cut (whichever trips first).
    Auto {
        /// Checkpoint after this many WAL bytes since the last cut.
        wal_bytes: u64,
        /// Checkpoint after this many WAL records since the last cut.
        wal_records: u64,
    },
}

/// Outcome of one checkpoint attempt.
#[derive(Debug, Clone, Copy)]
pub struct CkptReport {
    /// Whether a snapshot was actually published (false when nothing
    /// new was durable since the last cut).
    pub performed: bool,
    /// The WAL cut the current snapshot covers.
    pub cut: u64,
    /// Live keys in the published snapshot.
    pub keys: u64,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// WAL segment bytes deleted after the publish.
    pub wal_bytes_dropped: u64,
    /// Wall-clock duration of the checkpoint, nanoseconds.
    pub duration_ns: u64,
}

/// Cumulative checkpoint counters (relaxed: diagnostics, not
/// synchronization), snapshotted by [`Checkpointer::stats`].
#[derive(Default)]
struct CkptCounters {
    count: AtomicU64,
    bytes: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    last_cut: AtomicU64,
    duration_ns: Histogram,
}

/// A snapshot of the checkpoint counters, with the same hand-rolled
/// stable-schema JSON as the rest of the workspace.
#[derive(Debug, Clone, Default)]
pub struct CkptStats {
    /// Snapshots published.
    pub count: u64,
    /// Cumulative serialized snapshot bytes.
    pub bytes: u64,
    /// Cumulative WAL bytes reclaimed by post-publish truncation.
    pub wal_truncated_bytes: u64,
    /// The WAL cut the current snapshot covers.
    pub last_cut: u64,
    /// Checkpoint wall-clock duration histogram, ns.
    pub duration_ns: HistogramSnapshot,
}

impl CkptStats {
    /// Stable-schema JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"bytes\":{},\"wal_truncated_bytes\":{},\"last_cut\":{},\
             \"duration_ns\":{}}}",
            self.count,
            self.bytes,
            self.wal_truncated_bytes,
            self.last_cut,
            self.duration_ns.to_json(),
        )
    }
}

struct RunState {
    snaps: Box<dyn SnapshotStore>,
    last_cut: u64,
}

/// Publishes `{snapshot, WAL cut}` pairs; one checkpoint at a time.
/// All of its I/O happens here — on the caller's thread or the store's
/// background trigger thread — never inside an atomic section.
pub struct Checkpointer {
    wal: Arc<Wal>,
    memtable: Arc<MemTable>,
    run: Mutex<RunState>,
    counters: CkptCounters,
    auto: Option<(u64, u64)>,
    bytes_mark: AtomicU64,
    records_mark: AtomicU64,
}

impl Checkpointer {
    /// A checkpointer over `wal` + `memtable`, publishing to `snaps`.
    /// `last_cut` is the cut of the snapshot recovery loaded (0 if
    /// none); `policy` configures the background trigger thresholds.
    pub fn new(
        wal: Arc<Wal>,
        memtable: Arc<MemTable>,
        snaps: Box<dyn SnapshotStore>,
        last_cut: u64,
        policy: CkptPolicy,
    ) -> Self {
        let auto = match policy {
            CkptPolicy::Manual => None,
            CkptPolicy::Auto {
                wal_bytes,
                wal_records,
            } => Some((wal_bytes, wal_records)),
        };
        Checkpointer {
            wal,
            memtable,
            run: Mutex::new(RunState { snaps, last_cut }),
            counters: CkptCounters::default(),
            auto,
            bytes_mark: AtomicU64::new(0),
            records_mark: AtomicU64::new(0),
        }
    }

    /// Run one checkpoint (see the module docs for the protocol).
    /// Serialized: a second caller blocks until the first finishes,
    /// then usually observes nothing new and returns a skipped report.
    pub fn run(&self, rt: &Runtime) -> io::Result<CkptReport> {
        let mut run = self.run.lock();
        let t0 = Instant::now();
        let durable = self.wal.durable_seq();
        if durable <= run.last_cut {
            return Ok(CkptReport {
                performed: false,
                cut: run.last_cut,
                keys: 0,
                snapshot_bytes: 0,
                wal_bytes_dropped: 0,
                duration_ns: 0,
            });
        }
        rt.trace_app(EventKind::CkptBegin, durable);
        // 1. Quiescent cut + fresh segment: records > cut land in the
        //    new segment, the old ones become immutable.
        let cut = self.wal.rotate()?;
        // 2. The memtable catches up to the cut (bounded: every record
        //    <= cut is durable, so its applier is past the fsync).
        self.memtable.wait_applied_through(cut);
        // 3. Freeze and serialize outside any store lock.
        let frozen = self.memtable.freeze_through(cut);
        let keys = frozen.len() as u64;
        let bytes = encode_snapshot(cut, frozen.iter());
        // 4. Durable, atomic publish.
        run.snaps.write_and_publish(&bytes)?;
        rt.trace_app(EventKind::CkptPublish, bytes.len() as u64);
        // 5. Only now is it safe to drop the covered segments.
        let freed = self.wal.drop_rotated()?;
        rt.trace_app(EventKind::WalTruncate, freed);
        // 6. Fold the frozen delta into the memtable base.
        self.memtable.compact_through(cut);
        run.last_cut = cut;

        self.bytes_mark
            .store(self.wal.bytes_appended(), Ordering::Relaxed);
        self.records_mark
            .store(self.wal.records_appended(), Ordering::Relaxed);
        self.counters.count.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.counters
            .wal_truncated_bytes
            .fetch_add(freed, Ordering::Relaxed);
        self.counters.last_cut.store(cut, Ordering::Relaxed);
        let duration_ns = t0.elapsed().as_nanos() as u64;
        self.counters.duration_ns.record(duration_ns);
        Ok(CkptReport {
            performed: true,
            cut,
            keys,
            snapshot_bytes: bytes.len() as u64,
            wal_bytes_dropped: freed,
            duration_ns,
        })
    }

    /// Cheap threshold check for the background trigger (two relaxed
    /// loads; called from deferred ops, so it must not block).
    pub fn should_trigger(&self) -> bool {
        match self.auto {
            None => false,
            Some((max_bytes, max_records)) => {
                let b = self.wal.bytes_appended() - self.bytes_mark.load(Ordering::Relaxed);
                let r = self.wal.records_appended() - self.records_mark.load(Ordering::Relaxed);
                b >= max_bytes || r >= max_records
            }
        }
    }

    /// Snapshot the checkpoint counters.
    pub fn stats(&self) -> CkptStats {
        CkptStats {
            count: self.counters.count.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            wal_truncated_bytes: self.counters.wal_truncated_bytes.load(Ordering::Relaxed),
            last_cut: self.counters.last_cut.load(Ordering::Relaxed),
            duration_ns: self.counters.duration_ns.snapshot(),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample() -> BTreeMap<Arc<str>, Arc<[u8]>> {
        let mut m: BTreeMap<Arc<str>, Arc<[u8]>> = BTreeMap::new();
        m.insert(Arc::from("alpha"), Arc::from(&b"1"[..]));
        m.insert(Arc::from("beta"), Arc::from(&[0u8; 100][..]));
        m.insert(Arc::from("gamma"), Arc::from(&b""[..]));
        m
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let m = sample();
        let bytes = encode_snapshot(42, m.iter());
        let (cut, back) = decode_snapshot(&bytes).expect("valid snapshot");
        assert_eq!(cut, 42);
        assert_eq!(back, m);

        let empty = encode_snapshot(7, std::iter::empty());
        let (cut, back) = decode_snapshot(&empty).expect("empty snapshot is valid");
        assert_eq!(cut, 7);
        assert!(back.is_empty());
    }

    #[test]
    fn snapshot_validation_is_all_or_nothing() {
        let bytes = encode_snapshot(42, sample().iter());
        // Any truncation is rejected — even one that ends exactly on a
        // record boundary (the footer is gone).
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_none(),
                "truncation at {cut} accepted"
            );
        }
        // Any single corrupt byte is rejected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(
                decode_snapshot(&bad).is_none(),
                "corrupt byte at {i} accepted"
            );
        }
    }
}
