//! The store: sharded `TVar` buckets behind `Defer` handles, with WAL
//! durability via `atomic_defer`.
//!
//! ## Data layout
//!
//! Keys hash (FNV-1a) to one of `shards` shards; within a shard, to one of
//! `buckets_per_shard` buckets. A bucket is an immutable sorted
//! `Arc<Vec<(key, value)>>` held in a `TVar` — updates clone-and-replace
//! the vector, which keeps `TVar`'s `Clone` cheap (an `Arc` bump) for
//! readers and gives point lookups a binary search.
//!
//! Each shard (not each bucket) is a [`Defer`]-wrapped object: transactions
//! reach the bucket `TVar`s through [`Defer::with`], which subscribes to
//! the shard's implicit `TxLock`. That is the granularity at which deferred
//! WAL appends exclude observers — fine enough that writers to different
//! shards coalesce their fsyncs concurrently, coarse enough that the lock
//! table stays small. `trace::contention_report` on a traced run shows
//! whether the default shard count spreads load (see `kv_bench`).
//!
//! ## Write protocol
//!
//! [`KvStore::write_batch`] encodes the redo record *before* entering the
//! transaction (re-execution on conflict must not re-serialize), then in
//! one transaction: `atomic_defer` over the touched shards (first, per the
//! ordering discipline for potentially-irrevocable transactions), then the
//! bucket updates. The deferred operation appends to the WAL and blocks
//! until its covering fsync returns — so `write_batch` acks only durable
//! writes, and the shard locks make commit + durability one atomic step as
//! far as any other transaction can tell.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ad_defer::{atomic_defer, atomic_defer_tracked, Defer, DeferHandle, Deferrable};
use ad_stm::{EventKind, Runtime, StmResult, TVar, TmConfig, Tx};
use ad_support::sync::atomic::{AtomicU64, Ordering};

use ad_support::sync::{Condvar, Mutex};

use crate::checkpoint::{
    snapshot_paths, Checkpointer, CkptPolicy, CkptReport, CkptStats, FileSnapshots, SnapshotStore,
};
use crate::memtable::MemTable;
use crate::recover::{
    encode_decided, encode_prepare, encode_redo, recover_two_tier, scan, RecoveryReport, RedoKind,
    RedoRecord,
};
use crate::wal::{
    fsync_dir_of, segment_path, FileMedium, MemDisk, SyncPolicy, Wal, WalMedium, WalStats,
    MEMDISK_SNAP_CUR, MEMDISK_SNAP_PREV, MEMDISK_SNAP_TMP, MEMDISK_WAL,
};

/// Whether (and how) the store persists writes.
#[derive(Debug, Clone)]
pub enum Durability {
    /// No WAL: pure in-memory transactional store. The baseline that
    /// isolates STM cost from I/O cost in `kv_bench`.
    Volatile,
    /// Write-ahead log at `path`, recovered on open, synced per `sync`.
    Durable {
        /// WAL file path (created if absent, recovered if present).
        path: PathBuf,
        /// Group-commit or fsync-per-commit.
        sync: SyncPolicy,
    },
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of shards — the lock granularity for deferred WAL appends.
    pub shards: usize,
    /// Hash buckets per shard.
    pub buckets_per_shard: usize,
    /// Persistence mode.
    pub durability: Durability,
    /// Checkpoint policy (only meaningful for durable stores whose
    /// medium supports segment rotation — file-backed and [`MemDisk`]).
    pub ckpt: CkptPolicy,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            shards: 16,
            buckets_per_shard: 64,
            durability: Durability::Volatile,
            ckpt: CkptPolicy::Manual,
        }
    }
}

impl KvConfig {
    /// In-memory store with default sharding.
    pub fn volatile() -> Self {
        Self::default()
    }

    /// Durable store with default sharding.
    pub fn durable(path: impl Into<PathBuf>, sync: SyncPolicy) -> Self {
        KvConfig {
            durability: Durability::Durable {
                path: path.into(),
                sync,
            },
            ..Self::default()
        }
    }

    /// Override the shard count (and proportionally the bucket count).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the checkpoint policy ([`CkptPolicy::Auto`] starts a
    /// background trigger thread on open).
    pub fn with_ckpt(mut self, ckpt: CkptPolicy) -> Self {
        self.ckpt = ckpt;
        self
    }
}

/// An atomic multi-key write: puts and deletes that commit — and become
/// durable — together or not at all.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    pub(crate) ops: Vec<(String, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a put. Later ops on the same key win.
    pub fn put(mut self, key: impl Into<String>, value: impl Into<Vec<u8>>) -> Self {
        self.ops.push((key.into(), Some(value.into())));
        self
    }

    /// Add a delete.
    pub fn delete(mut self, key: impl Into<String>) -> Self {
        self.ops.push((key.into(), None));
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The operations in application order: `(key, Some(value))` for a put,
    /// `(key, None)` for a delete. This is the accessor the `ad-net` wire
    /// codec uses to frame a BATCH request without re-modelling the batch.
    pub fn ops(&self) -> impl Iterator<Item = (&str, Option<&[u8]>)> {
        self.ops.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Build a batch from decoded redo ops — the shape cross-shard
    /// slices travel in (`ad-shard` transport frames, recovered
    /// [`RedoRecord`]s).
    pub fn from_ops(ops: crate::recover::RedoOps) -> Self {
        WriteBatch { ops }
    }
}

/// A sorted immutable bucket; updates clone-and-replace.
type Bucket = Arc<Vec<(Arc<str>, Arc<[u8]>)>>;

/// One shard: the deferrable unit. Its implicit `TxLock` (via `Defer`)
/// is what deferred WAL appends hold.
struct Shard {
    buckets: Vec<TVar<Bucket>>,
}

/// Wakeup channel between deferred ops (which notice the WAL crossed a
/// threshold) and the background checkpoint thread (which does the I/O;
/// running a checkpoint *inside* a deferred op would self-deadlock — it
/// waits for a memtable watermark that includes the caller's own
/// not-yet-applied record).
struct CkptSignal {
    state: Mutex<CkptWake>,
    cv: Condvar,
}

#[derive(Default)]
struct CkptWake {
    shutdown: bool,
    kicked: bool,
}

struct CkptWorker {
    handle: Option<std::thread::JoinHandle<()>>,
    signal: Arc<CkptSignal>,
}

/// Everything an open path hands to [`KvStore::build`]: the recovered
/// durable state (snapshot base + WAL suffix records), the resumed WAL,
/// and the optional snapshot store that enables checkpointing.
struct BuildParts {
    wal: Option<Arc<Wal>>,
    base: crate::memtable::KeyMap,
    records: Vec<RedoRecord>,
    recovery: Option<RecoveryReport>,
    snaps: Option<Box<dyn SnapshotStore>>,
    ckpt_policy: CkptPolicy,
}

impl BuildParts {
    fn volatile() -> Self {
        BuildParts {
            wal: None,
            base: BTreeMap::new(),
            records: Vec::new(),
            recovery: None,
            snaps: None,
            ckpt_policy: CkptPolicy::Manual,
        }
    }
}

/// The durable transactional KV store. Clone-free: share it via `Arc`.
pub struct KvStore {
    rt: Arc<Runtime>,
    shards: Vec<Defer<Shard>>,
    buckets_per_shard: usize,
    wal: Option<Arc<Wal>>,
    /// Durable-tier index of recent committed writes (every durable
    /// store; populated post-fsync from the same deferred ops that
    /// append redo records).
    memtable: Option<Arc<MemTable>>,
    /// Present when the medium supports rotation and a snapshot store
    /// exists (file-backed and [`MemDisk`] opens).
    ckpt: Option<Arc<Checkpointer>>,
    ckpt_worker: Option<CkptWorker>,
    next_txid: AtomicU64,
    recovery: Option<RecoveryReport>,
    /// Cross-shard slices staged in the recovered log whose outcome this
    /// log alone cannot prove: awaiting reconciliation against the other
    /// shards' logs (`ad-shard`), else presumed aborted. Never applied.
    pending_prepares: Mutex<Vec<RedoRecord>>,
    /// gids this shard's recovered log proves committed (it contains a
    /// [`RedoKind::Decided`] record for them) — the evidence the
    /// reconciliation pass consults to resolve *other* shards' prepares.
    recovered_decided: Vec<u64>,
}

/// One remote participant of a cross-shard batch, as the coordinating
/// store sees it: opaque callbacks the sharding layer (`ad-shard`) wires
/// to its transport. Both are `Arc<dyn Fn>` because the coordinating
/// transaction's body may re-run on conflict — the deferred operations
/// that call them are rebuilt per attempt and run once, post-commit.
pub struct RemoteSlice {
    /// Send the participant its slice of the batch and block until the
    /// participant acknowledges the slice is *staged durably* on its
    /// shard. Runs as its own deferred operation, in submission
    /// (ascending-shard) order.
    pub prepare: Arc<dyn Fn() + Send + Sync>,
    /// Tell the participant the decision record is durable — it may now
    /// expose the slice. Must not block on the participant's apply.
    pub release: Arc<dyn Fn() + Send + Sync>,
}

impl Drop for KvStore {
    fn drop(&mut self) {
        if let Some(w) = self.ckpt_worker.take() {
            w.signal.state.lock().shutdown = true;
            w.signal.cv.notify_all();
            if let Some(h) = w.handle {
                let _ = h.join();
            }
        }
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl KvStore {
    /// Open a store: fresh for [`Durability::Volatile`]; for
    /// [`Durability::Durable`], two-tier recovery at `path` — load the
    /// newest valid snapshot (`{path}.ckpt.cur`, falling back to
    /// `.prev`), replay the WAL suffix with `seq > cut` across the
    /// segment files (`path`, `{path}.segN`), truncate any torn tail —
    /// and continue appending after it.
    pub fn open(config: KvConfig) -> io::Result<KvStore> {
        match &config.durability {
            Durability::Volatile => Ok(Self::build(
                config.shards,
                config.buckets_per_shard,
                BuildParts::volatile(),
            )),
            Durability::Durable { path, sync } => {
                let path = path.clone();
                Self::open_durable(&path, *sync, &config)
            }
        }
    }

    fn open_durable(path: &Path, sync: SyncPolicy, config: &KvConfig) -> io::Result<KvStore> {
        // Discover segments: the base file carries the chain from seq 1,
        // rotated segments are `{base}.seg{first_seq:020}`.
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        if path.exists() {
            segs.push((1, path.to_path_buf()));
        }
        let fname = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let dir = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."));
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(suffix) = name
                    .strip_prefix(&fname)
                    .and_then(|s| s.strip_prefix(".seg"))
                {
                    if let Ok(id) = suffix.parse::<u64>() {
                        segs.push((id, entry.path()));
                    }
                }
            }
        }
        segs.sort();
        let mut seg_bytes: Vec<(u64, Vec<u8>)> = Vec::with_capacity(segs.len());
        for (id, p) in &segs {
            seg_bytes.push((*id, std::fs::read(p)?));
        }
        let (tmp, cur, prev) = snapshot_paths(path);
        let read_opt = |p: &Path| match std::fs::read(p) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        };
        let cur_bytes = read_opt(&cur)?;
        let prev_bytes = read_opt(&prev)?;
        let t = recover_two_tier(cur_bytes.as_deref(), prev_bytes.as_deref(), &seg_bytes);

        // Sanitize before accepting writes: drop a stale tmp, cut torn
        // tails, delete unusable segments — durably.
        let _ = std::fs::remove_file(&tmp);
        let mut old_segments = Vec::new();
        let mut active_file = None;
        for (i, (_, p)) in segs.iter().enumerate() {
            match t.keep[i] {
                Some(valid) => {
                    let mut file = OpenOptions::new().read(true).write(true).open(p)?;
                    let len = file.metadata()?.len();
                    if len != valid {
                        file.set_len(valid)?;
                        file.sync_data()?;
                    }
                    if t.active == Some(i) {
                        file.seek(SeekFrom::End(0))?;
                        active_file = Some((file, p.clone()));
                    } else {
                        old_segments.push(p.clone());
                    }
                }
                None => match std::fs::remove_file(p) {
                    Ok(()) | Err(_) => {}
                },
            }
        }
        let (file, current) = match active_file {
            Some(fp) => fp,
            None => {
                // Fresh store, or recovery discarded every segment:
                // start a new contiguous segment.
                let p = if t.next_seq == 1 {
                    path.to_path_buf()
                } else {
                    segment_path(path, t.next_seq)
                };
                let f = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&p)?;
                (f, p)
            }
        };
        fsync_dir_of(path)?;
        let medium = FileMedium::with_segments(file, path.to_path_buf(), current, old_segments);
        let wal = Arc::new(Wal::new(Box::new(medium), sync, t.next_seq));
        let snaps: Box<dyn SnapshotStore> = Box::new(FileSnapshots::new(path.to_path_buf()));
        Ok(Self::build(
            config.shards,
            config.buckets_per_shard,
            BuildParts {
                wal: Some(wal),
                base: t.base,
                records: t.records,
                recovery: Some(t.report),
                snaps: Some(snaps),
                ckpt_policy: config.ckpt,
            },
        ))
    }

    /// Open over an explicit [`WalMedium`], recovering from `existing`
    /// (a crash image) first. The single-stream testing/bench entry
    /// point: `MemMedium` here gives byte-exact crash injection without
    /// touching disk. No snapshot store is attached, so checkpointing is
    /// unavailable — use [`KvStore::open_on_disk`] for that.
    pub fn open_on_medium(
        config: &KvConfig,
        sync: SyncPolicy,
        medium: Box<dyn WalMedium>,
        existing: &[u8],
    ) -> (KvStore, RecoveryReport) {
        let (records, report) = scan(existing, 1);
        let wal = Arc::new(Wal::new(medium, sync, report.last_seq + 1));
        let store = Self::build(
            config.shards,
            config.buckets_per_shard,
            BuildParts {
                wal: Some(wal),
                base: BTreeMap::new(),
                records,
                recovery: Some(report.clone()),
                snaps: None,
                ckpt_policy: CkptPolicy::Manual,
            },
        );
        (store, report)
    }

    /// Open on a [`MemDisk`] — the multi-file in-memory medium — with
    /// full two-tier recovery and checkpoint support. The testing entry
    /// point for byte-exact crash images across checkpoint boundaries
    /// ([`MemDisk::crash_image`]).
    pub fn open_on_disk(
        config: &KvConfig,
        sync: SyncPolicy,
        disk: MemDisk,
    ) -> (KvStore, RecoveryReport) {
        let mut segs: Vec<(u64, String)> = disk
            .file_names()
            .into_iter()
            .filter_map(|n| {
                if n == MEMDISK_WAL {
                    Some((1, n))
                } else if let Some(suffix) = n.strip_prefix("wal.seg") {
                    suffix.parse::<u64>().ok().map(|id| (id, n))
                } else {
                    None
                }
            })
            .collect();
        segs.sort();
        let seg_bytes: Vec<(u64, Vec<u8>)> = segs
            .iter()
            .map(|(id, n)| (*id, disk.read_file(n).unwrap_or_default()))
            .collect();
        let cur = disk.read_file(MEMDISK_SNAP_CUR);
        let prev = disk.read_file(MEMDISK_SNAP_PREV);
        let t = recover_two_tier(cur.as_deref(), prev.as_deref(), &seg_bytes);

        if disk.read_file(MEMDISK_SNAP_TMP).is_some() {
            disk.delete_file(MEMDISK_SNAP_TMP);
        }
        let mut old_segments = Vec::new();
        let mut active = None;
        for (i, (_, name)) in segs.iter().enumerate() {
            match t.keep[i] {
                Some(valid) => {
                    disk.truncate_file(name, valid as usize);
                    if t.active == Some(i) {
                        active = Some(name.clone());
                    } else {
                        old_segments.push(name.clone());
                    }
                }
                None => {
                    disk.delete_file(name);
                }
            }
        }
        let active = active.unwrap_or_else(|| {
            if t.next_seq == 1 {
                MEMDISK_WAL.to_string()
            } else {
                format!("wal.seg{:020}", t.next_seq)
            }
        });
        disk.set_active_wal(&active, old_segments);
        let wal = Arc::new(Wal::new(Box::new(disk.clone()), sync, t.next_seq));
        let report = t.report.clone();
        let store = Self::build(
            config.shards,
            config.buckets_per_shard,
            BuildParts {
                wal: Some(wal),
                base: t.base,
                records: t.records,
                recovery: Some(t.report),
                snaps: Some(Box::new(disk)),
                ckpt_policy: config.ckpt,
            },
        );
        (store, report)
    }

    fn build(shards: usize, buckets_per_shard: usize, parts: BuildParts) -> KvStore {
        assert!(shards >= 1 && buckets_per_shard >= 1);
        let BuildParts {
            wal,
            base,
            records,
            recovery,
            snaps,
            ckpt_policy,
        } = parts;
        // Under SyncPolicy::Async the store's runtime gets a pooled
        // deferred executor: commits return after write-back + quiescence
        // and the WAL append (including the group-commit leader's fsync)
        // runs on a pool worker while the shard locks are held by the
        // transaction's batch owner. Every other policy keeps the default
        // inline executor — the deferred fsync blocks the committer, which
        // is exactly the ack-after-durability contract of `write_batch`.
        let tm_cfg = match &wal {
            Some(w) if w.sync_policy() == SyncPolicy::Async => {
                TmConfig::stm().with_defer_pool(4, 256)
            }
            _ => TmConfig::stm(),
        };
        // Bulk-load the snapshot's base image straight into the buckets
        // (the store is not yet shared, and BTreeMap order means each
        // bucket's subsequence is already sorted); the WAL suffix then
        // replays transactionally, one record per transaction, exactly
        // like the pre-checkpoint recovery path — deterministic replay,
        // monotonic versions.
        type BucketLoad = Vec<(Arc<str>, Arc<[u8]>)>;
        let mut bucket_data: Vec<Vec<BucketLoad>> =
            vec![vec![Vec::new(); buckets_per_shard]; shards];
        for (k, v) in &base {
            let h = fnv1a64(k.as_bytes());
            let (si, bi) = (
                (h as u32 as usize) % shards,
                ((h >> 32) as usize) % buckets_per_shard,
            );
            bucket_data[si][bi].push((Arc::clone(k), Arc::clone(v)));
        }
        let snapshot_cut = recovery.as_ref().map_or(0, |r| r.snapshot_cut);
        let store = KvStore {
            rt: Arc::new(Runtime::new(tm_cfg)),
            shards: bucket_data
                .into_iter()
                .map(|buckets| {
                    Defer::new(Shard {
                        buckets: buckets
                            .into_iter()
                            .map(|entries| TVar::new(Arc::new(entries)))
                            .collect(),
                    })
                })
                .collect(),
            buckets_per_shard,
            wal,
            memtable: None,
            ckpt: None,
            ckpt_worker: None,
            next_txid: AtomicU64::new(1),
            recovery,
            pending_prepares: Mutex::new(Vec::new()),
            recovered_decided: Vec::new(),
        };
        // Cross-shard records (DESIGN.md §14): a Decided record anywhere
        // in this log proves its gid committed; a Prepare record is
        // *never* replayed directly — its data becomes real only through
        // a matching Decided record (same log, or appended by
        // reconciliation after `resolve_prepared`). Prepares still
        // lacking a local decision after replay are parked for the
        // sharding layer; standalone opens presume them aborted.
        let decided: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r.kind {
                RedoKind::Decided { gid } => Some(gid),
                _ => None,
            })
            .collect();
        let mut max_txid = 0;
        for rec in &records {
            max_txid = max_txid.max(rec.txid);
            if matches!(rec.kind, RedoKind::Prepare { .. }) {
                continue;
            }
            store.rt.atomically(|tx| {
                for (key, value) in &rec.ops {
                    store.apply_in_tx(tx, key, value.as_deref())?;
                }
                Ok(())
            });
        }
        *store.pending_prepares.lock() = records
            .iter()
            .filter(|r| matches!(r.kind, RedoKind::Prepare { gid } if !decided.contains(&gid)))
            .cloned()
            .collect();
        let mut store = store;
        store.recovered_decided = decided.into_iter().collect();
        store.recovered_decided.sort_unstable();
        let store = store;
        // txids are diagnostic, but keep them monotonic across
        // checkpointed restarts (snapshotted records' txids are gone;
        // the cut bounds them because txids are handed out per batch).
        store
            .next_txid
            .store(max_txid.max(snapshot_cut) + 1, Ordering::Relaxed);
        let mut store = store;
        if let Some(wal) = &store.wal {
            // The memtable base is the recovered durable state: snapshot
            // image plus replayed suffix; the watermark starts at the
            // resumed WAL position. Undecided prepares stay out — the
            // durable tier must never show a staged slice.
            let mut mt_base = base;
            for rec in &records {
                if matches!(rec.kind, RedoKind::Prepare { .. }) {
                    continue;
                }
                for (key, value) in &rec.ops {
                    match value {
                        Some(v) => {
                            mt_base.insert(Arc::from(key.as_str()), Arc::from(v.as_slice()));
                        }
                        None => {
                            mt_base.remove(key.as_str());
                        }
                    }
                }
            }
            let memtable = Arc::new(MemTable::with_base(mt_base, wal.durable_seq()));
            if let Some(snaps) = snaps {
                let ckpt = Arc::new(Checkpointer::new(
                    Arc::clone(wal),
                    Arc::clone(&memtable),
                    snaps,
                    snapshot_cut,
                    ckpt_policy,
                ));
                if matches!(ckpt_policy, CkptPolicy::Auto { .. }) {
                    let signal = Arc::new(CkptSignal {
                        state: Mutex::new(CkptWake::default()),
                        cv: Condvar::new(),
                    });
                    let worker_sig = Arc::clone(&signal);
                    let worker_ckpt = Arc::clone(&ckpt);
                    let worker_rt = Arc::clone(&store.rt);
                    let handle = std::thread::spawn(move || loop {
                        {
                            let mut g = worker_sig.state.lock();
                            while !g.shutdown && !g.kicked {
                                worker_sig.cv.wait(&mut g);
                            }
                            if g.shutdown {
                                return;
                            }
                            g.kicked = false;
                        }
                        if let Err(e) = worker_ckpt.run(&worker_rt) {
                            eprintln!("ad-kv: background checkpoint failed: {e}");
                        }
                    });
                    store.ckpt_worker = Some(CkptWorker {
                        handle: Some(handle),
                        signal,
                    });
                }
                store.ckpt = Some(ckpt);
            }
            store.memtable = Some(memtable);
        }
        store
    }

    fn locate(&self, key: &str) -> (usize, usize) {
        let h = fnv1a64(key.as_bytes());
        (
            (h as u32 as usize) % self.shards.len(),
            ((h >> 32) as usize) % self.buckets_per_shard,
        )
    }

    fn read_in_tx(&self, tx: &mut Tx, key: &str) -> StmResult<Option<Arc<[u8]>>> {
        let (si, bi) = self.locate(key);
        self.shards[si].with(tx, |shard, tx| {
            let bucket = tx.read(&shard.buckets[bi])?;
            Ok(bucket
                .binary_search_by(|(k, _)| (**k).cmp(key))
                .ok()
                .map(|pos| Arc::clone(&bucket[pos].1)))
        })
    }

    fn apply_in_tx(&self, tx: &mut Tx, key: &str, value: Option<&[u8]>) -> StmResult<()> {
        let (si, bi) = self.locate(key);
        self.shards[si].with(tx, |shard, tx| {
            let var = &shard.buckets[bi];
            let bucket = tx.read(var)?;
            let mut entries = (*bucket).clone();
            match entries.binary_search_by(|(k, _)| (**k).cmp(key)) {
                Ok(pos) => match value {
                    Some(v) => entries[pos].1 = Arc::from(v),
                    None => {
                        entries.remove(pos);
                    }
                },
                Err(pos) => {
                    if let Some(v) = value {
                        entries.insert(pos, (Arc::from(key), Arc::from(v)));
                    }
                }
            }
            tx.write(var, Arc::new(entries))
        })
    }

    /// Point lookup (one transaction, subscribes to the key's shard — so a
    /// concurrent writer's not-yet-durable update is never returned).
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        self.rt.atomically(|tx| self.read_in_tx(tx, key))
    }

    /// Consistent multi-key lookup: all keys read in one transaction, so
    /// the result is a serializable snapshot even across shards.
    pub fn get_many(&self, keys: &[&str]) -> Vec<Option<Arc<[u8]>>> {
        self.rt.atomically(|tx| {
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                out.push(self.read_in_tx(tx, key)?);
            }
            Ok(out)
        })
    }

    /// Insert or overwrite one key. Returns after the write is durable
    /// (for durable stores).
    pub fn put(&self, key: &str, value: &[u8]) {
        self.write_batch(&WriteBatch::new().put(key, value));
    }

    /// Delete one key (no-op if absent — the delete is still logged).
    pub fn delete(&self, key: &str) {
        self.write_batch(&WriteBatch::new().delete(key));
    }

    /// Apply an atomic multi-key batch. With an inline executor (every
    /// policy but [`SyncPolicy::Async`]), returns only after the batch's
    /// single redo record is fsync-covered. Under `Async` it returns at
    /// commit, with durability pending on the executor — the touched
    /// shards stay locked from commit to durability either way, so no
    /// transaction ever observes an acked-but-volatile (or partially
    /// applied) batch. Use [`write_batch_async`](Self::write_batch_async)
    /// when the caller needs to know when durability lands.
    pub fn write_batch(&self, batch: &WriteBatch) {
        self.write_batch_inner(batch, false);
    }

    /// Like [`write_batch`](Self::write_batch), but returns a handle
    /// tracking the batch's deferred durability work: `Some(handle)` for a
    /// durable store ([`DeferHandle::wait`] blocks until the redo record's
    /// covering fsync returned; `poll`/`is_done` check without blocking),
    /// `None` when there is nothing to wait for (volatile store or empty
    /// batch). Most useful under [`SyncPolicy::Async`], where commit and
    /// durability are decoupled; with an inline executor the returned
    /// handle is already complete.
    pub fn write_batch_async(&self, batch: &WriteBatch) -> Option<DeferHandle<()>> {
        self.write_batch_inner(batch, true)
    }

    fn write_batch_inner(&self, batch: &WriteBatch, tracked: bool) -> Option<DeferHandle<()>> {
        if batch.ops.is_empty() {
            return None;
        }
        let txid = self.next_txid.fetch_add(1, Ordering::Relaxed);
        // Encode once, outside the transaction: conflict re-execution must
        // not redo the serialization work (zero-allocation retry
        // discipline), and the deferred closure clones only an Arc.
        let payload: Option<Arc<[u8]>> = self
            .wal
            .as_ref()
            .map(|_| Arc::from(encode_redo(txid, &batch.ops).into_boxed_slice()));
        // Pre-convert the ops once for the memtable apply inside the
        // deferred closure (same zero-allocation-on-retry discipline as
        // the payload).
        let applied = self.mem_ops_of(batch);
        let handles = self.touched_shards(batch);

        self.rt.atomically(|tx| {
            // Deferral first (lock acquisitions are transactional writes on
            // the TxLocks, but must precede data writes: if the contention
            // manager escalates this transaction to irrevocable, blocking
            // lock acquisition after an eager write would be fatal).
            let mut handle = None;
            if let (Some(wal), Some(payload)) = (&self.wal, &payload) {
                let refs: Vec<&dyn Deferrable> =
                    handles.iter().map(|s| s as &dyn Deferrable).collect();
                let wal2 = Arc::clone(wal);
                let bytes = Arc::clone(payload);
                let runtime = Arc::clone(&self.rt);
                let mt = self.memtable.clone();
                let ops = applied.clone();
                let trigger = match (&self.ckpt, &self.ckpt_worker) {
                    (Some(ck), Some(w)) => Some((Arc::clone(ck), Arc::clone(&w.signal))),
                    _ => None,
                };
                let op = move || {
                    let seq = wal2.append_durable(&bytes, &runtime);
                    // Post-fsync, shard locks still held: the memtable
                    // only ever sees durable bytes (see `memtable` docs).
                    if let (Some(mt), Some(ops)) = (&mt, &ops) {
                        mt.apply(seq, ops);
                    }
                    // Checkpoint I/O must not run here (it waits on the
                    // memtable watermark, which includes *this* record up
                    // until the `apply` above) — just wake the worker.
                    if let Some((ck, sig)) = &trigger {
                        if ck.should_trigger() {
                            // This closure is the *deferred op* (bound to a
                            // variable before `atomic_defer`, so the lint's
                            // lexical scoping can't see its legal home);
                            // the lock is post-commit, never retried.
                            // ad-lint: allow(blocking-in-atomic)
                            sig.state.lock().kicked = true;
                            sig.cv.notify_all();
                        }
                    }
                };
                if tracked {
                    handle = Some(atomic_defer_tracked(tx, &refs, op)?);
                } else {
                    atomic_defer(tx, &refs, op)?;
                }
            }
            for (key, value) in &batch.ops {
                self.apply_in_tx(tx, key, value.as_deref())?;
            }
            Ok(handle)
        })
    }

    /// Commit this store's slice of a cross-shard batch as the
    /// **coordinator** (DESIGN.md §14). In one transaction: apply `batch`
    /// to the buckets and queue, over the touched shards, one deferred
    /// prepare per entry of `remotes` (in submission order — the caller
    /// passes participants in ascending shard order, which is what makes
    /// the protocol deadlock-free) followed by the decision operation:
    /// append this shard's gid-tagged [`RedoKind::Decided`] record and
    /// block for its covering fsync — **the commit point of the entire
    /// cross-shard batch** — then apply it to the memtable and broadcast
    /// release. The shard locks are held from commit until the decision
    /// op returns, so no reader on this shard observes the slice before
    /// every participant staged durably and the decision itself is
    /// durable.
    ///
    /// Requires the inline deferred executor (any policy but
    /// [`SyncPolicy::Async`]): the protocol depends on the prepare ops
    /// and the decision op running in submission order.
    pub fn write_batch_coordinated(&self, gid: u64, batch: &WriteBatch, remotes: &[RemoteSlice]) {
        assert!(!batch.ops.is_empty(), "coordinator slice cannot be empty");
        assert!(
            self.sync_policy() != Some(SyncPolicy::Async),
            "cross-shard coordination requires the inline deferred executor"
        );
        let txid = self.next_txid.fetch_add(1, Ordering::Relaxed);
        let payload: Option<Arc<[u8]>> = self
            .wal
            .as_ref()
            .map(|_| Arc::from(encode_decided(gid, txid, &batch.ops).into_boxed_slice()));
        let applied = self.mem_ops_of(batch);
        let handles = self.touched_shards(batch);

        self.rt.atomically(|tx| {
            let refs: Vec<&dyn Deferrable> = handles.iter().map(|s| s as &dyn Deferrable).collect();
            for r in remotes {
                let p = Arc::clone(&r.prepare);
                let rt2 = Arc::clone(&self.rt);
                atomic_defer(tx, &refs, move || {
                    rt2.trace_app(EventKind::ShardPrepare, gid);
                    p();
                    rt2.trace_app(EventKind::ShardAck, gid);
                })?;
            }
            let wal = self.wal.clone();
            let bytes = payload.clone();
            let runtime = Arc::clone(&self.rt);
            let mt = self.memtable.clone();
            let ops = applied.clone();
            let releases: Vec<Arc<dyn Fn() + Send + Sync>> =
                remotes.iter().map(|r| Arc::clone(&r.release)).collect();
            atomic_defer(tx, &refs, move || {
                if let (Some(wal), Some(bytes)) = (&wal, &bytes) {
                    let seq = wal.append_durable(bytes, &runtime);
                    if let (Some(mt), Some(ops)) = (&mt, &ops) {
                        mt.apply(seq, ops);
                    }
                }
                runtime.trace_app(EventKind::ShardRelease, gid);
                for release in &releases {
                    release();
                }
            })?;
            for (key, value) in &batch.ops {
                self.apply_in_tx(tx, key, value.as_deref())?;
            }
            Ok(())
        });
    }

    /// Stage and apply one shard's slice of a cross-shard batch as a
    /// **participant** (DESIGN.md §14). In one transaction: apply `batch`
    /// to the buckets and `atomic_defer`, over the touched shards, an
    /// operation that (1) appends the gid-tagged [`RedoKind::Prepare`]
    /// record and blocks for its covering fsync, (2) calls `ack` — the
    /// stage is durable, the coordinator may count this shard, (3) blocks
    /// in `wait_release` until the coordinator says the decision is
    /// durable, and (4) appends this shard's own [`RedoKind::Decided`]
    /// record and applies it to the memtable. The shard locks are held
    /// from commit through (4): neither a transactional read nor a
    /// durable-tier read ([`read_uncommitted`](Self::read_uncommitted),
    /// which skips locks but only ever sees the memtable) can observe
    /// the slice before the whole batch is decided.
    ///
    /// Returns after (4). Volatile stores skip the WAL steps but keep
    /// the same lock window.
    pub fn apply_prepared<A, R>(&self, gid: u64, batch: &WriteBatch, ack: A, wait_release: R)
    where
        A: Fn() + Send + Sync + 'static,
        R: Fn() + Send + Sync + 'static,
    {
        assert!(!batch.ops.is_empty(), "participant slice cannot be empty");
        let txid = self.next_txid.fetch_add(1, Ordering::Relaxed);
        let prepare_bytes: Option<Arc<[u8]>> = self
            .wal
            .as_ref()
            .map(|_| Arc::from(encode_prepare(gid, txid, &batch.ops).into_boxed_slice()));
        let decided_bytes: Option<Arc<[u8]>> = self
            .wal
            .as_ref()
            .map(|_| Arc::from(encode_decided(gid, txid, &batch.ops).into_boxed_slice()));
        let applied = self.mem_ops_of(batch);
        let handles = self.touched_shards(batch);
        let ack = Arc::new(ack);
        let wait_release = Arc::new(wait_release);

        self.rt.atomically(|tx| {
            let refs: Vec<&dyn Deferrable> = handles.iter().map(|s| s as &dyn Deferrable).collect();
            let wal = self.wal.clone();
            let prepare_bytes = prepare_bytes.clone();
            let decided_bytes = decided_bytes.clone();
            let runtime = Arc::clone(&self.rt);
            let mt = self.memtable.clone();
            let ops = applied.clone();
            let ack = Arc::clone(&ack);
            let wait_release = Arc::clone(&wait_release);
            atomic_defer(tx, &refs, move || {
                runtime.trace_app(EventKind::ShardPrepare, gid);
                if let (Some(wal), Some(bytes)) = (&wal, &prepare_bytes) {
                    let seq = wal.append_durable(bytes, &runtime);
                    // Account the sequence so the watermark (and hence
                    // checkpointing) keeps advancing, but with no ops:
                    // staged data must stay out of the durable tier.
                    if let Some(mt) = &mt {
                        mt.apply(seq, &[]);
                    }
                }
                runtime.trace_app(EventKind::ShardAck, gid);
                ack();
                wait_release();
                runtime.trace_app(EventKind::ShardRelease, gid);
                if let (Some(wal), Some(bytes)) = (&wal, &decided_bytes) {
                    let seq = wal.append_durable(bytes, &runtime);
                    if let (Some(mt), Some(ops)) = (&mt, &ops) {
                        mt.apply(seq, ops);
                    }
                }
            })?;
            for (key, value) in &batch.ops {
                self.apply_in_tx(tx, key, value.as_deref())?;
            }
            Ok(())
        });
    }

    /// gids of cross-shard slices staged in this store's recovered log
    /// that its own log cannot prove committed. The sharding layer
    /// resolves each against the other shards' logs
    /// ([`resolve_prepared`](Self::resolve_prepared) /
    /// [`abort_prepared`](Self::abort_prepared)); a store opened
    /// standalone leaves them parked — presumed aborted, never applied.
    pub fn pending_prepared_gids(&self) -> Vec<u64> {
        self.pending_prepares
            .lock()
            .iter()
            .filter_map(|r| r.kind.gid())
            .collect()
    }

    /// gids this store's recovered log proves committed (a
    /// [`RedoKind::Decided`] record survives for them). Reconciliation
    /// evidence for *other* shards' pending prepares.
    pub fn recovered_decided_gids(&self) -> &[u64] {
        &self.recovered_decided
    }

    /// Resolve a recovered pending prepare as committed: apply its ops
    /// and append this shard's own Decided record durably, so the next
    /// recovery needs no cross-shard evidence. Returns `false` if no
    /// pending prepare with `gid` exists.
    pub fn resolve_prepared(&self, gid: u64) -> bool {
        let rec = {
            let mut pending = self.pending_prepares.lock();
            let Some(i) = pending.iter().position(|r| r.kind.gid() == Some(gid)) else {
                return false;
            };
            pending.remove(i)
        };
        let batch = WriteBatch {
            ops: rec.ops.clone(),
        };
        let payload: Option<Arc<[u8]>> = self
            .wal
            .as_ref()
            .map(|_| Arc::from(encode_decided(gid, rec.txid, &rec.ops).into_boxed_slice()));
        let applied = self.mem_ops_of(&batch);
        let handles = self.touched_shards(&batch);
        self.rt.atomically(|tx| {
            let refs: Vec<&dyn Deferrable> = handles.iter().map(|s| s as &dyn Deferrable).collect();
            if let (Some(wal), Some(payload)) = (&self.wal, &payload) {
                let wal = Arc::clone(wal);
                let bytes = Arc::clone(payload);
                let runtime = Arc::clone(&self.rt);
                let mt = self.memtable.clone();
                let ops = applied.clone();
                atomic_defer(tx, &refs, move || {
                    let seq = wal.append_durable(&bytes, &runtime);
                    if let (Some(mt), Some(ops)) = (&mt, &ops) {
                        mt.apply(seq, ops);
                    }
                })?;
            }
            for (key, value) in &batch.ops {
                self.apply_in_tx(tx, key, value.as_deref())?;
            }
            Ok(())
        });
        true
    }

    /// Drop a recovered pending prepare (presumed abort: no shard's log
    /// proves the gid committed). The staged record stays in the WAL but
    /// is never applied — and is gone after the next checkpoint. Returns
    /// `false` if no pending prepare with `gid` exists.
    pub fn abort_prepared(&self, gid: u64) -> bool {
        let mut pending = self.pending_prepares.lock();
        match pending.iter().position(|r| r.kind.gid() == Some(gid)) {
            Some(i) => {
                pending.remove(i);
                true
            }
            None => false,
        }
    }

    /// Pre-convert a batch for memtable apply inside a deferred closure
    /// (allocation happens once, outside the transaction — conflict
    /// re-execution clones only `Arc`s).
    fn mem_ops_of(&self, batch: &WriteBatch) -> Option<Arc<Vec<crate::memtable::MemOp>>> {
        self.memtable.as_ref().map(|_| {
            Arc::new(
                batch
                    .ops
                    .iter()
                    .map(|(k, v)| (Arc::from(k.as_str()), v.as_deref().map(Arc::from)))
                    .collect(),
            )
        })
    }

    /// The deduplicated, index-ordered `Defer` handles of the shards a
    /// batch touches — the lock set for its deferred durability ops.
    fn touched_shards(&self, batch: &WriteBatch) -> Vec<Defer<Shard>> {
        let mut touched: Vec<usize> = batch.ops.iter().map(|(k, _)| self.locate(k).0).collect();
        touched.sort_unstable();
        touched.dedup();
        touched.iter().map(|&i| self.shards[i].clone()).collect()
    }

    /// Insert or overwrite one key, returning a durability handle — see
    /// [`write_batch_async`](Self::write_batch_async).
    pub fn put_async(&self, key: &str, value: &[u8]) -> Option<DeferHandle<()>> {
        self.write_batch_async(&WriteBatch::new().put(key, value))
    }

    /// Delete one key, returning a durability handle — see
    /// [`write_batch_async`](Self::write_batch_async).
    pub fn delete_async(&self, key: &str) -> Option<DeferHandle<()>> {
        self.write_batch_async(&WriteBatch::new().delete(key))
    }

    /// Block until `handle` (from one of the `*_async` methods) resolves,
    /// i.e. until that batch's redo record is fsync-covered. Connection
    /// handlers use this as the ack gate: respond to the client only after
    /// `wait_durable` returns (see `ad-net` and PROTOCOL.md §6).
    pub fn wait_durable(&self, handle: &DeferHandle<()>) {
        handle.wait(&self.rt);
    }

    /// Block until every deferred durability operation issued so far has
    /// completed. A no-op for inline-executor stores (their writes are
    /// durable at ack); under [`SyncPolicy::Async`] this is the barrier a
    /// caller uses before e.g. reporting a checkpoint.
    pub fn sync(&self) {
        self.rt.drain_deferred();
    }

    /// Range scan: all `(key, value)` pairs with `key >= start`, in key
    /// order, at most `limit` of them — one consistent snapshot across
    /// every shard.
    pub fn scan_from(&self, start: &str, limit: usize) -> Vec<(Arc<str>, Arc<[u8]>)> {
        self.rt.atomically(|tx| {
            let mut all = Vec::new();
            for shard in &self.shards {
                shard.with(tx, |s, tx| {
                    for var in &s.buckets {
                        let bucket = tx.read(var)?;
                        for (k, v) in bucket.iter() {
                            if k.as_ref() >= start {
                                all.push((Arc::clone(k), Arc::clone(v)));
                            }
                        }
                    }
                    Ok(())
                })?;
            }
            all.sort_by(|a, b| a.0.cmp(&b.0));
            all.truncate(limit);
            Ok(std::mem::take(&mut all))
        })
    }

    /// Full contents as an ordered map — one consistent snapshot. Test and
    /// recovery-verification helper; O(store size).
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        self.rt.atomically(|tx| {
            let mut out = BTreeMap::new();
            for shard in &self.shards {
                shard.with(tx, |s, tx| {
                    for var in &s.buckets {
                        let bucket = tx.read(var)?;
                        for (k, v) in bucket.iter() {
                            out.insert(k.to_string(), v.to_vec());
                        }
                    }
                    Ok(())
                })?;
            }
            Ok(std::mem::take(&mut out))
        })
    }

    /// Number of live keys (consistent snapshot).
    pub fn len(&self) -> usize {
        self.rt.atomically(|tx| {
            let mut n = 0;
            for shard in &self.shards {
                shard.with(tx, |s, tx| {
                    for var in &s.buckets {
                        n += tx.read(var)?.len();
                    }
                    Ok(())
                })?;
            }
            Ok(std::mem::replace(&mut n, 0))
        })
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's STM runtime — for `set_tracing`, `snapshot_stats`,
    /// `take_trace`.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Shard count (the deferred-lock granularity).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// WAL counters, if durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Take a checkpoint now: atomically publish a snapshot of the
    /// committed-durable state at a quiescent WAL cut and drop the WAL
    /// segments it covers. Returns `CkptReport { performed: false, .. }`
    /// when nothing new is durable since the last checkpoint, and
    /// `ErrorKind::Unsupported` when the store has no snapshot tier
    /// (volatile, or opened via [`KvStore::open_on_medium`]).
    ///
    /// Serving continues throughout: writers keep appending to the
    /// post-rotation segment and readers are never blocked (the snapshot
    /// is serialized from an `Arc`-shared frozen copy of the memtable).
    pub fn checkpoint(&self) -> io::Result<CkptReport> {
        match &self.ckpt {
            Some(ck) => ck.run(&self.rt),
            None => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "store has no checkpoint tier (volatile or single-stream medium)",
            )),
        }
    }

    /// Checkpoint counters and the checkpoint-duration histogram, if
    /// this store has a checkpoint tier.
    pub fn ckpt_stats(&self) -> Option<CkptStats> {
        self.ckpt.as_ref().map(|c| c.stats())
    }

    /// Point lookup against the durable tier only — the memtable of
    /// fsynced writes — skipping the transactional read path and its
    /// shard subscription entirely.
    ///
    /// **Weaker than opacity**: this read does not serialize with
    /// in-flight transactions, so it can miss a write that committed
    /// (acked) a moment ago on another thread, and a sequence of calls
    /// is not a consistent snapshot. What it can **never** do is return
    /// volatile bytes: the memtable is populated strictly after the redo
    /// record's covering fsync. Volatile stores fall back to
    /// [`KvStore::get`].
    pub fn read_uncommitted(&self, key: &str) -> Option<Arc<[u8]>> {
        match &self.memtable {
            Some(mt) => mt.get(key),
            None => self.get(key),
        }
    }

    /// Range scan against the durable tier only — same contract (and
    /// same caveats) as [`KvStore::read_uncommitted`]. Volatile stores
    /// fall back to [`KvStore::scan_from`].
    pub fn scan_uncommitted(&self, start: &str, limit: usize) -> Vec<(Arc<str>, Arc<[u8]>)> {
        match &self.memtable {
            Some(mt) => mt.scan_from(start, limit),
            None => self.scan_from(start, limit),
        }
    }

    /// The WAL's sync policy, or `None` for a volatile store.
    pub fn sync_policy(&self) -> Option<SyncPolicy> {
        self.wal.as_ref().map(|w| w.sync_policy())
    }

    /// One JSON object with everything a monitoring endpoint wants:
    /// `{"shards":..,"keys":..,"wal":{..}|null,"ckpt":{..}|null,"stm":{..}}`
    /// — the WAL counters ([`WalStats::to_json`]), the checkpoint
    /// counters ([`CkptStats::to_json`], `null` when the store has no
    /// checkpoint tier), and the runtime's full stats report
    /// ([`ad_stm::StatsReport::to_json`]). This is the payload of the
    /// `ad-net` STATS response (PROTOCOL.md §5.6), kept here so library
    /// embedders and the wire protocol serve identical schemas.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"shards\":{},\"keys\":{},\"wal\":{},\"ckpt\":{},\"stm\":{}}}",
            self.shards.len(),
            self.len(),
            self.wal_stats()
                .map_or_else(|| "null".to_string(), |w| w.to_json()),
            self.ckpt_stats()
                .map_or_else(|| "null".to_string(), |c| c.to_json()),
            self.rt.snapshot_stats().to_json(),
        )
    }

    /// What recovery found on open, if this store was opened from a log.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::wal::MemMedium;

    #[test]
    fn put_get_delete_roundtrip() {
        let store = KvStore::open(KvConfig::volatile()).unwrap();
        assert_eq!(store.get("k"), None);
        store.put("k", b"v1");
        assert_eq!(store.get("k").as_deref(), Some(&b"v1"[..]));
        store.put("k", b"v2");
        assert_eq!(store.get("k").as_deref(), Some(&b"v2"[..]));
        store.delete("k");
        assert_eq!(store.get("k"), None);
        assert!(store.is_empty());
    }

    #[test]
    fn batch_is_atomic_and_scan_is_ordered() {
        let store = KvStore::open(KvConfig::volatile()).unwrap();
        store.write_batch(
            &WriteBatch::new()
                .put("c", b"3")
                .put("a", b"1")
                .put("b", b"2")
                .delete("a"),
        );
        assert_eq!(store.len(), 2);
        let scanned = store.scan_from("", 10);
        let keys: Vec<&str> = scanned.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec!["b", "c"]);
        assert_eq!(store.scan_from("c", 10).len(), 1);
        assert_eq!(store.scan_from("b", 1).len(), 1);
    }

    #[test]
    fn later_ops_in_a_batch_win() {
        let store = KvStore::open(KvConfig::volatile()).unwrap();
        store.write_batch(&WriteBatch::new().put("k", b"first").put("k", b"second"));
        assert_eq!(store.get("k").as_deref(), Some(&b"second"[..]));
    }

    #[test]
    fn durable_put_is_synced_before_ack() {
        let mem = MemMedium::new();
        let (store, report) = KvStore::open_on_medium(
            &KvConfig::default(),
            SyncPolicy::GroupCommit,
            Box::new(mem.clone()),
            &[],
        );
        assert_eq!(report.records, 0);
        store.put("k", b"v");
        // The ack contract: by the time put() returned, the record is in
        // the *synced* prefix, not merely written.
        assert!(!mem.synced().is_empty());
        assert_eq!(mem.synced().len(), mem.written().len());
        let stats = store.wal_stats().unwrap();
        assert_eq!(stats.records, 1);
    }

    #[test]
    fn reopen_recovers_committed_state() {
        let mem = MemMedium::new();
        let cfg = KvConfig::default();
        let (store, _) =
            KvStore::open_on_medium(&cfg, SyncPolicy::GroupCommit, Box::new(mem.clone()), &[]);
        store.put("a", b"1");
        store.write_batch(&WriteBatch::new().put("b", b"2").put("c", b"3"));
        store.delete("a");
        let before = store.dump();
        drop(store);

        let image = mem.synced();
        let (reopened, report) = KvStore::open_on_medium(
            &cfg,
            SyncPolicy::GroupCommit,
            Box::new(MemMedium::new()),
            &image,
        );
        assert_eq!(report.records, 3);
        assert!(!report.torn());
        assert_eq!(reopened.dump(), before);
        // And the store is writable with continuing sequence numbers.
        reopened.put("d", b"4");
        assert_eq!(reopened.len(), 3);
    }

    #[test]
    fn file_backed_open_recovers_across_process_style_reopen() {
        let dir = std::env::temp_dir().join(format!("ad-kv-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.wal");
        let _ = std::fs::remove_file(&path);

        let cfg = KvConfig::durable(&path, SyncPolicy::GroupCommit);
        let store = KvStore::open(cfg.clone()).unwrap();
        store.put("x", b"1");
        store.put("y", b"2");
        let before = store.dump();
        drop(store);

        let reopened = KvStore::open(cfg).unwrap();
        assert_eq!(reopened.dump(), before);
        assert_eq!(reopened.recovery_report().unwrap().records, 2);
        drop(reopened);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backed_checkpoint_after_crash_between_rotate_and_publish() {
        let dir =
            std::env::temp_dir().join(format!("ad-kv-rotate-reuse-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.wal");

        let cfg = KvConfig::durable(&path, SyncPolicy::PerCommit);
        let store = KvStore::open(cfg.clone()).unwrap();
        store.put("a", b"1");
        store.put("b", b"2");
        drop(store);
        // Simulate a crash after Wal::rotate but before the snapshot
        // publish: the empty post-cut segment exists, no snapshot does.
        std::fs::File::create(segment_path(&path, 3)).unwrap();

        // Recovery resumes appends on that segment; the next checkpoint
        // rotates at the same cut and must reuse it — not rotate into it
        // and delete the file the store is appending to.
        let store = KvStore::open(cfg.clone()).unwrap();
        let report = store.checkpoint().unwrap();
        assert!(report.performed);
        assert_eq!(report.cut, 2);
        store.put("post", b"3");
        drop(store);

        let reopened = KvStore::open(cfg).unwrap();
        assert_eq!(reopened.get("a").as_deref(), Some(&b"1"[..]));
        assert_eq!(reopened.get("b").as_deref(), Some(&b"2"[..]));
        assert_eq!(
            reopened.get("post").as_deref(),
            Some(&b"3"[..]),
            "fsync-acked write on the reused segment survived the reopen"
        );
        let r = reopened.recovery_report().unwrap();
        assert_eq!(r.snapshot_cut, 2);
        assert_eq!(r.replayed, 1, "only the post-checkpoint suffix replays");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_many_is_a_consistent_snapshot_shape() {
        let store = KvStore::open(KvConfig::volatile()).unwrap();
        store.write_batch(&WriteBatch::new().put("a", b"1").put("z", b"26"));
        let got = store.get_many(&["a", "missing", "z"]);
        assert_eq!(got[0].as_deref(), Some(&b"1"[..]));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(&b"26"[..]));
    }

    #[test]
    fn async_handles_resolve_and_stats_json_is_balanced() {
        let mem = MemMedium::new();
        let (store, _) = KvStore::open_on_medium(
            &KvConfig::default(),
            SyncPolicy::GroupCommit,
            Box::new(mem.clone()),
            &[],
        );
        let h = store
            .put_async("k", b"v")
            .expect("durable put yields a handle");
        store.wait_durable(&h);
        assert!(!mem.synced().is_empty());
        let h = store
            .delete_async("k")
            .expect("durable delete yields a handle");
        store.wait_durable(&h);
        assert!(store.is_empty());
        assert_eq!(store.sync_policy(), Some(SyncPolicy::GroupCommit));

        let j = store.stats_json();
        for key in [
            "\"shards\":",
            "\"keys\":0",
            "\"wal\":{",
            "\"stm\":{",
            "\"records\":2",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());

        let volatile = KvStore::open(KvConfig::volatile()).unwrap();
        assert_eq!(volatile.sync_policy(), None);
        assert!(volatile.put_async("k", b"v").is_none());
        assert!(volatile.stats_json().contains("\"wal\":null"));
    }

    /// A medium whose fsync blocks while a gate flag is held: the test
    /// can freeze a write inside its committed-but-not-yet-durable
    /// window and probe what each read path observes.
    struct GatedMedium {
        inner: MemMedium,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl WalMedium for GatedMedium {
        fn append(&mut self, data: &[u8]) {
            self.inner.append(data);
        }
        fn sync(&mut self) {
            let (flag, cv) = &*self.gate;
            let mut held = flag.lock();
            while *held {
                cv.wait(&mut held);
            }
            drop(held);
            self.inner.sync();
        }
    }

    #[test]
    fn read_uncommitted_never_observes_volatile_bytes() {
        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let mem = MemMedium::new();
        let medium = GatedMedium {
            inner: mem.clone(),
            gate: Arc::clone(&gate),
        };
        // Async: put_async returns at commit; the append + gated fsync
        // run on a pool worker while the shard lock stays held.
        let (store, _) = KvStore::open_on_medium(
            &KvConfig::default(),
            SyncPolicy::Async,
            Box::new(medium),
            &[],
        );
        let h = store.put_async("k", b"v").expect("durable handle");
        for _ in 0..2000 {
            if !mem.written().is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!mem.written().is_empty(), "append reached the medium");
        assert!(mem.synced().is_empty(), "fsync is gated");
        assert!(!h.is_done());
        // The committed write exists in the TVars (shard-locked) and in
        // the kernel-buffered WAL — but the durable tier must not show
        // it: the memtable applies strictly after the covering fsync.
        assert_eq!(
            store.read_uncommitted("k"),
            None,
            "durable-tier read observed volatile bytes"
        );
        assert!(store.scan_uncommitted("", 10).is_empty());

        *gate.0.lock() = false;
        gate.1.notify_all();
        store.wait_durable(&h);
        assert_eq!(mem.synced().len(), mem.written().len());
        assert_eq!(store.read_uncommitted("k").as_deref(), Some(&b"v"[..]));
        let scanned = store.scan_uncommitted("", 10);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].0.as_ref(), "k");

        // Volatile stores have no durable tier: both fall back to the
        // transactional paths.
        let volatile = KvStore::open(KvConfig::volatile()).unwrap();
        volatile.put("a", b"1");
        assert_eq!(volatile.read_uncommitted("a").as_deref(), Some(&b"1"[..]));
        assert_eq!(volatile.scan_uncommitted("", 10).len(), 1);
    }

    #[test]
    fn empty_batch_is_a_noop_and_logs_nothing() {
        let mem = MemMedium::new();
        let (store, _) = KvStore::open_on_medium(
            &KvConfig::default(),
            SyncPolicy::PerCommit,
            Box::new(mem.clone()),
            &[],
        );
        store.write_batch(&WriteBatch::new());
        assert!(mem.written().is_empty());
        assert_eq!(store.wal_stats().unwrap().records, 0);
    }
}
