//! Crash recovery: scanning the WAL, truncating the torn tail, decoding
//! redo records.
//!
//! The durability contract (DESIGN.md §9): a transaction is acked only
//! after its deferred fsync returned, so after a crash the store must
//! come back as *exactly* the set of transactions whose records survive
//! as a valid WAL prefix — which is a superset of the acked ones (bytes
//! written but not yet synced may happen to survive) and never includes
//! a partial transaction (one redo record is one transaction; a record
//! either passes its checksum or is truncated away with everything after
//! it).
//!
//! The scan accepts records while: the header is complete, the magic
//! matches, the length is sane, the payload is complete, the CRC matches,
//! and the sequence number continues the chain. The first failure marks
//! the torn tail; everything from that offset on is discarded. This is
//! deliberately prefix-only — a record *after* a corrupt one may well be
//! intact, but replaying across a hole would reorder same-key updates.

use std::collections::BTreeMap;

use ad_support::crc32::crc32;

use crate::checkpoint::decode_snapshot;
use crate::wal::{HEADER_LEN, MAGIC, MAX_PAYLOAD};

/// A batch's writes in application order: `Some(value)` is a put, `None`
/// a delete.
pub type RedoOps = Vec<(String, Option<Vec<u8>>)>;

/// What a redo record *means* to replay — the cross-shard commit protocol
/// (DESIGN.md §14) adds two staged kinds to the original single-shard one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedoKind {
    /// A single-shard transaction's writes: applied unconditionally.
    Local,
    /// One shard's staged slice of a cross-shard batch, durable before
    /// the participant acked. Replay **never** applies a prepare
    /// directly: its data becomes real only through a later
    /// [`RedoKind::Decided`] record with the same `gid` (written by this
    /// shard once it learned the outcome), or through recovery-time
    /// reconciliation when some shard's log proves the gid committed.
    /// An unresolvable prepare is presumed aborted.
    Prepare {
        /// Global cross-shard transaction id; the coordinator's shard
        /// index lives in the high 16 bits.
        gid: u64,
    },
    /// A decided slice of cross-shard batch `gid`: applied exactly like
    /// [`RedoKind::Local`], and additionally *proof of commit* — a
    /// `Decided` record for `gid` anywhere in the cluster resolves every
    /// shard's matching prepare.
    Decided {
        /// Global cross-shard transaction id (see [`RedoKind::Prepare`]).
        gid: u64,
    },
}

impl RedoKind {
    /// The gid of a cross-shard record, `None` for [`RedoKind::Local`].
    pub fn gid(&self) -> Option<u64> {
        match self {
            RedoKind::Local => None,
            RedoKind::Prepare { gid } | RedoKind::Decided { gid } => Some(*gid),
        }
    }
}

/// One decoded redo record: a committed transaction's writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoRecord {
    /// WAL sequence number (contiguous from 1).
    pub seq: u64,
    /// The writing transaction's id (diagnostic; not required for replay).
    pub txid: u64,
    /// Replay semantics: unconditional, staged, or decided (cross-shard).
    pub kind: RedoKind,
    /// The writes, in application order: `Some(value)` is a put, `None`
    /// a delete.
    pub ops: RedoOps,
}

/// Why the scan stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The log ended exactly on a record boundary.
    Clean,
    /// Fewer bytes than a header (or than the promised payload) remained —
    /// the classic torn tail of a crashed append.
    TruncatedRecord,
    /// Magic mismatch at a record boundary (garbage or overwritten tail).
    BadMagic,
    /// Payload checksum mismatch (partially-persisted or corrupted write).
    BadChecksum,
    /// Implausible length field (> [`MAX_PAYLOAD`]).
    BadLength,
    /// Sequence number did not continue the chain.
    BadSequence,
    /// The frame was intact but the redo payload didn't parse.
    BadPayload,
}

/// Which snapshot file provided recovery's base image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// No snapshot: the store recovered from the WAL alone.
    None,
    /// `snapshot.cur` validated and was loaded.
    Current,
    /// `snapshot.cur` was missing or corrupt; `snapshot.prev` was loaded.
    Previous,
}

/// The outcome of a recovery scan (and, when produced by
/// [`KvStore::open`](crate::KvStore::open), the replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records accepted by the scan (across all WAL segments).
    pub records: u64,
    /// Individual key operations in the accepted records.
    pub ops: u64,
    /// Bytes of valid WAL prefix kept.
    pub valid_bytes: u64,
    /// Bytes discarded as the torn tail.
    pub truncated_bytes: u64,
    /// Sequence number of the last accepted record (0 if none).
    pub last_seq: u64,
    /// Why the scan stopped.
    pub end: ScanEnd,
    /// WAL cut of the loaded snapshot — replay skipped `seq <= cut`
    /// (0 when no snapshot was loaded).
    pub snapshot_cut: u64,
    /// Live keys loaded from the snapshot.
    pub snapshot_keys: u64,
    /// Which snapshot file provided the base image.
    pub snapshot_source: SnapshotSource,
    /// Records actually replayed: accepted records with
    /// `seq > snapshot_cut`. Always `<= records` — a post-checkpoint
    /// reopen replays only the WAL suffix, not full history.
    pub replayed: u64,
}

impl RecoveryReport {
    /// True when the log needed truncation (i.e. a crash tore the tail).
    pub fn torn(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Encode a redo payload:
/// `kind: u8 | [gid: u64 when kind != 0] | txid: u64 | nops: u32 | ops*`,
/// each op `klen: u32 | key | tag: u8 (0 delete, 1 put) | [vlen: u32 | value]`.
/// Kind bytes: 0 [`RedoKind::Local`], 1 [`RedoKind::Prepare`],
/// 2 [`RedoKind::Decided`]. This function emits kind 0; the cross-shard
/// kinds come from [`encode_prepare`] / [`encode_decided`].
pub fn encode_redo(txid: u64, ops: &[(String, Option<Vec<u8>>)]) -> Vec<u8> {
    encode_kinded(RedoKind::Local, txid, ops)
}

/// Encode a staged cross-shard slice ([`RedoKind::Prepare`]).
pub fn encode_prepare(gid: u64, txid: u64, ops: &[(String, Option<Vec<u8>>)]) -> Vec<u8> {
    encode_kinded(RedoKind::Prepare { gid }, txid, ops)
}

/// Encode a decided cross-shard slice ([`RedoKind::Decided`]).
pub fn encode_decided(gid: u64, txid: u64, ops: &[(String, Option<Vec<u8>>)]) -> Vec<u8> {
    encode_kinded(RedoKind::Decided { gid }, txid, ops)
}

fn encode_kinded(kind: RedoKind, txid: u64, ops: &[(String, Option<Vec<u8>>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        21 + ops
            .iter()
            .map(|(k, v)| 9 + k.len() + v.as_ref().map_or(0, |v| 4 + v.len()))
            .sum::<usize>(),
    );
    match kind {
        RedoKind::Local => out.push(0),
        RedoKind::Prepare { gid } => {
            out.push(1);
            out.extend_from_slice(&gid.to_le_bytes());
        }
        RedoKind::Decided { gid } => {
            out.push(2);
            out.extend_from_slice(&gid.to_le_bytes());
        }
    }
    out.extend_from_slice(&txid.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for (key, value) in ops {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        match value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decode a redo payload produced by [`encode_redo`] /
/// [`encode_prepare`] / [`encode_decided`]. `None` on any structural
/// error (recovery treats that record as the torn tail).
pub fn decode_redo(payload: &[u8]) -> Option<(RedoKind, u64, RedoOps)> {
    fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if b.len() < n {
            return None;
        }
        let (head, tail) = b.split_at(n);
        *b = tail;
        Some(head)
    }

    let mut b = payload;
    let kind = match take(&mut b, 1)?[0] {
        0 => RedoKind::Local,
        tag @ (1 | 2) => {
            let gid = u64::from_le_bytes(take(&mut b, 8)?.try_into().ok()?);
            if tag == 1 {
                RedoKind::Prepare { gid }
            } else {
                RedoKind::Decided { gid }
            }
        }
        _ => return None,
    };
    let txid = u64::from_le_bytes(take(&mut b, 8)?.try_into().ok()?);
    let nops = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
    let mut ops = Vec::with_capacity(nops.min(1024));
    for _ in 0..nops {
        let klen = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
        let key = String::from_utf8(take(&mut b, klen)?.to_vec()).ok()?;
        let tag = take(&mut b, 1)?[0];
        let value = match tag {
            0 => None,
            1 => {
                let vlen = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
                Some(take(&mut b, vlen)?.to_vec())
            }
            _ => return None,
        };
        ops.push((key, value));
    }
    if !b.is_empty() {
        return None; // trailing garbage inside a checksummed frame
    }
    Some((kind, txid, ops))
}

/// Scan `bytes` as a WAL image: return the decoded records of the longest
/// valid prefix, plus a report describing where and why the scan stopped.
/// `first_seq` is 1 for a whole log (the only case the store produces;
/// the parameter exists for scanning fixtures).
pub fn scan(bytes: &[u8], first_seq: u64) -> (Vec<RedoRecord>, RecoveryReport) {
    let mut records = Vec::new();
    let mut ops = 0u64;
    let mut off = 0usize;
    let mut expect_seq = first_seq;
    let end;
    loop {
        let rest = &bytes[off..];
        if rest.is_empty() {
            end = ScanEnd::Clean;
            break;
        }
        if rest.len() < HEADER_LEN {
            end = ScanEnd::TruncatedRecord;
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if magic != MAGIC {
            end = ScanEnd::BadMagic;
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            end = ScanEnd::BadLength;
            break;
        }
        let seq = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[16..20].try_into().unwrap());
        if rest.len() < HEADER_LEN + len {
            end = ScanEnd::TruncatedRecord;
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            end = ScanEnd::BadChecksum;
            break;
        }
        if seq != expect_seq {
            end = ScanEnd::BadSequence;
            break;
        }
        let Some((kind, txid, rec_ops)) = decode_redo(payload) else {
            end = ScanEnd::BadPayload;
            break;
        };
        ops += rec_ops.len() as u64;
        records.push(RedoRecord {
            seq,
            txid,
            kind,
            ops: rec_ops,
        });
        expect_seq += 1;
        off += HEADER_LEN + len;
    }
    let report = RecoveryReport {
        records: records.len() as u64,
        ops,
        valid_bytes: off as u64,
        truncated_bytes: (bytes.len() - off) as u64,
        last_seq: expect_seq - 1,
        end,
        snapshot_cut: 0,
        snapshot_keys: 0,
        snapshot_source: SnapshotSource::None,
        replayed: records.len() as u64,
    };
    (records, report)
}

/// The full two-tier recovery result: the snapshot's base image, the
/// WAL-suffix records to replay on top of it, and instructions for
/// sanitizing the on-disk segments before appending resumes.
pub(crate) struct TwoTier {
    /// Committed state as of `report.snapshot_cut` (empty without a
    /// snapshot).
    pub base: crate::memtable::KeyMap,
    /// Accepted records with `seq > snapshot_cut`, in sequence order.
    pub records: Vec<RedoRecord>,
    /// Provenance and scan outcome.
    pub report: RecoveryReport,
    /// Sequence the resumed WAL assigns next.
    pub next_seq: u64,
    /// Per input segment: `Some(valid_len)` → keep, truncated to that
    /// length; `None` → delete (beyond a chain break, or unusable).
    pub keep: Vec<Option<u64>>,
    /// Index of the segment appends resume on (`None` → start a fresh
    /// segment at `next_seq`).
    pub active: Option<usize>,
}

/// Two-tier recovery: load the newest valid snapshot (`cur`, falling
/// back to `prev` on CRC/footer failure), then scan the WAL segments —
/// `(first_seq, bytes)` pairs in sequence order — as one contiguous
/// chain and keep the longest valid prefix. Records at or below the
/// snapshot's cut are dropped (already in the base image; they linger
/// in segments only across the crash window between snapshot publish
/// and WAL truncation, where suffix replay must be — and is —
/// idempotent: the filter simply excludes them). If the surviving chain
/// starts above `cut + 1` the suffix cannot be replayed without a hole,
/// so it is discarded entirely and the store recovers to the snapshot
/// alone — an older committed prefix (only reachable via double
/// corruption: the current snapshot *and* a covered segment).
pub(crate) fn recover_two_tier(
    snap_cur: Option<&[u8]>,
    snap_prev: Option<&[u8]>,
    segments: &[(u64, Vec<u8>)],
) -> TwoTier {
    let (cut, base, source) = match snap_cur.and_then(decode_snapshot) {
        Some((cut, map)) => (cut, map, SnapshotSource::Current),
        None => match snap_prev.and_then(decode_snapshot) {
            Some((cut, map)) => (cut, map, SnapshotSource::Previous),
            None => (0, BTreeMap::new(), SnapshotSource::None),
        },
    };

    let mut records: Vec<RedoRecord> = Vec::new();
    let mut ops = 0u64;
    let mut valid = 0u64;
    let mut truncated = 0u64;
    let mut end = ScanEnd::Clean;
    let mut keep: Vec<Option<u64>> = vec![None; segments.len()];
    let mut active = None;
    let mut expect = segments.first().map_or(1, |(id, _)| *id);
    let mut chain_last = expect - 1;
    let mut broken = false;
    for (i, (first_seq, bytes)) in segments.iter().enumerate() {
        if broken {
            truncated += bytes.len() as u64;
            continue;
        }
        if *first_seq != expect {
            // A hole between segments: everything from here on is
            // unreachable without reordering — discard it.
            broken = true;
            end = ScanEnd::BadSequence;
            truncated += bytes.len() as u64;
            continue;
        }
        let (recs, rep) = scan(bytes, *first_seq);
        valid += rep.valid_bytes;
        truncated += rep.truncated_bytes;
        ops += rep.ops;
        chain_last = rep.last_seq;
        keep[i] = Some(rep.valid_bytes);
        active = Some(i);
        records.extend(recs);
        if rep.end == ScanEnd::Clean {
            expect = rep.last_seq + 1;
        } else {
            broken = true;
            end = rep.end;
        }
    }

    // Two ways the chain can be useless against the snapshot:
    // - it *starts* above cut+1 (a hole between snapshot and suffix —
    //   nothing after the hole can be replayed), or
    // - it *ends* below the cut (every surviving record is already in
    //   the snapshot, and resuming appends at cut+1 on a segment whose
    //   last record is older would bake a sequence gap into the file).
    // Either way: drop the segments entirely and recover to the
    // snapshot alone; appends restart on a fresh, contiguous segment.
    let chain_start = segments.first().map_or(cut + 1, |(id, _)| *id);
    if chain_start > cut + 1 || chain_last < cut {
        if chain_start > cut + 1 {
            end = ScanEnd::BadSequence;
        }
        truncated += valid;
        valid = 0;
        ops = 0;
        records.clear();
        keep.iter_mut().for_each(|k| *k = None);
        active = None;
        chain_last = cut;
    }

    let total = records.len() as u64;
    records.retain(|r| r.seq > cut);
    let replayed = records.len() as u64;
    let next_seq = chain_last.max(cut) + 1;
    let report = RecoveryReport {
        records: total,
        ops,
        valid_bytes: valid,
        truncated_bytes: truncated,
        last_seq: chain_last,
        end,
        snapshot_cut: cut,
        snapshot_keys: base.len() as u64,
        snapshot_source: source,
        replayed,
    };
    TwoTier {
        base,
        records,
        report,
        next_seq,
        keep,
        active,
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::wal::frame_record;

    fn record(seq: u64, txid: u64, ops: &[(&str, Option<&[u8]>)]) -> Vec<u8> {
        let ops: Vec<(String, Option<Vec<u8>>)> = ops
            .iter()
            .map(|(k, v)| (k.to_string(), v.map(|v| v.to_vec())))
            .collect();
        let mut out = Vec::new();
        frame_record(&mut out, seq, &encode_redo(txid, &ops));
        out
    }

    #[test]
    fn redo_roundtrip() {
        let ops = vec![
            ("alpha".to_string(), Some(b"1".to_vec())),
            ("beta".to_string(), None),
            (String::new(), Some(Vec::new())),
        ];
        let enc = encode_redo(99, &ops);
        assert_eq!(decode_redo(&enc), Some((RedoKind::Local, 99, ops)));
    }

    #[test]
    fn cross_shard_kinds_roundtrip_with_gid() {
        let ops = vec![("k".to_string(), Some(b"v".to_vec()))];
        let gid = (3u64 << 48) | 7;
        let enc = encode_prepare(gid, 5, &ops);
        assert_eq!(
            decode_redo(&enc),
            Some((RedoKind::Prepare { gid }, 5, ops.clone()))
        );
        let enc = encode_decided(gid, 5, &ops);
        assert_eq!(decode_redo(&enc), Some((RedoKind::Decided { gid }, 5, ops)));
        assert_eq!(RedoKind::Prepare { gid }.gid(), Some(gid));
        assert_eq!(RedoKind::Local.gid(), None);
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        for enc in [
            encode_redo(1, &[("k".to_string(), Some(b"v".to_vec()))]),
            encode_prepare(9, 1, &[("k".to_string(), Some(b"v".to_vec()))]),
            encode_decided(9, 1, &[("k".to_string(), Some(b"v".to_vec()))]),
        ] {
            for cut in 0..enc.len() {
                assert_eq!(decode_redo(&enc[..cut]), None, "accepted prefix {cut}");
            }
            let mut trailing = enc.clone();
            trailing.push(0);
            assert_eq!(decode_redo(&trailing), None);
        }
        let enc = encode_redo(1, &[("k".to_string(), Some(b"v".to_vec()))]);
        let mut bad_tag = enc.clone();
        let tag_pos = 1 + 8 + 4 + 4 + 1; // kind + txid + nops + klen + "k"
        bad_tag[tag_pos] = 7;
        assert_eq!(decode_redo(&bad_tag), None);
        let mut bad_kind = enc;
        bad_kind[0] = 9;
        assert_eq!(decode_redo(&bad_kind), None);
    }

    #[test]
    fn scan_clean_log() {
        let mut log = record(1, 10, &[("a", Some(b"1"))]);
        log.extend(record(2, 11, &[("b", None)]));
        let (recs, rep) = scan(&log, 1);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].txid, 10);
        assert_eq!(recs[1].ops, vec![("b".to_string(), None)]);
        assert_eq!(rep.end, ScanEnd::Clean);
        assert!(!rep.torn());
        assert_eq!(rep.last_seq, 2);
        assert_eq!(rep.valid_bytes, log.len() as u64);
    }

    #[test]
    fn scan_truncates_torn_tail_at_every_cut_point() {
        let r1 = record(1, 1, &[("a", Some(b"one"))]);
        let r2 = record(2, 2, &[("b", Some(b"two")), ("c", None)]);
        let mut log = r1.clone();
        log.extend(&r2);
        // Cut anywhere strictly inside r2: exactly r1 survives.
        for cut in r1.len() + 1..log.len() {
            let (recs, rep) = scan(&log[..cut], 1);
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(rep.last_seq, 1);
            assert!(rep.torn());
            assert_eq!(rep.valid_bytes, r1.len() as u64);
        }
        // Cut inside r1: nothing survives.
        for cut in 1..r1.len() {
            let (recs, rep) = scan(&log[..cut], 1);
            assert!(recs.is_empty(), "cut at {cut}");
            assert!(rep.torn());
        }
    }

    #[test]
    fn scan_rejects_corrupt_payload_byte() {
        let r1 = record(1, 1, &[("a", Some(b"one"))]);
        let mut log = r1.clone();
        log.extend(record(2, 2, &[("b", Some(b"two"))]));
        log.extend(record(3, 3, &[("c", Some(b"three"))]));
        // Flip one payload byte of record 2: records 1 survives, 2 and 3
        // are gone (prefix-only recovery).
        let flip = r1.len() + HEADER_LEN + 2;
        log[flip] ^= 0xFF;
        let (recs, rep) = scan(&log, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(rep.end, ScanEnd::BadChecksum);
        assert_eq!(rep.truncated_bytes as usize, log.len() - r1.len());
    }

    #[test]
    fn scan_rejects_bad_magic_and_sequence_gap() {
        let mut log = record(1, 1, &[("a", Some(b"1"))]);
        let r1_len = log.len();
        log.extend(record(3, 3, &[("c", Some(b"3"))])); // gap: 2 missing
        let (recs, rep) = scan(&log, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(rep.end, ScanEnd::BadSequence);
        assert_eq!(rep.valid_bytes as usize, r1_len);

        let mut garbage = record(1, 1, &[("a", Some(b"1"))]);
        garbage.extend(b"not a record at all......");
        let (recs, rep) = scan(&garbage, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(rep.end, ScanEnd::BadMagic);
    }

    #[test]
    fn scan_empty_is_clean() {
        let (recs, rep) = scan(&[], 1);
        assert!(recs.is_empty());
        assert_eq!(rep.end, ScanEnd::Clean);
        assert_eq!(rep.last_seq, 0);
        assert!(!rep.torn());
    }

    fn snap(cut: u64, entries: &[(&str, &[u8])]) -> Vec<u8> {
        let map: BTreeMap<Arc<str>, Arc<[u8]>> = entries
            .iter()
            .map(|(k, v)| (Arc::from(*k), Arc::from(*v)))
            .collect();
        crate::checkpoint::encode_snapshot(cut, map.iter())
    }

    #[test]
    fn two_tier_replays_only_the_suffix() {
        // Snapshot at cut 2; suffix segment carries 3..=4.
        let mut seg = record(3, 3, &[("c", Some(b"3"))]);
        seg.extend(record(4, 4, &[("a", None)]));
        let cur = snap(2, &[("a", b"1"), ("b", b"2")]);
        let t = recover_two_tier(Some(&cur), None, &[(3, seg)]);
        assert_eq!(t.report.snapshot_cut, 2);
        assert_eq!(t.report.snapshot_source, SnapshotSource::Current);
        assert_eq!(t.report.snapshot_keys, 2);
        assert_eq!(t.report.replayed, 2);
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.base.len(), 2);
        assert_eq!(t.next_seq, 5);
        assert_eq!(t.active, Some(0));
    }

    #[test]
    fn two_tier_skips_covered_records_idempotently() {
        // The crash window between snapshot publish and WAL truncation:
        // the old segment (1..=2) still exists next to the snapshot at
        // cut 2. Records <= cut are filtered, not re-applied.
        let mut seg0 = record(1, 1, &[("a", Some(b"old"))]);
        seg0.extend(record(2, 2, &[("b", Some(b"2"))]));
        let seg1 = record(3, 3, &[("c", Some(b"3"))]);
        let cur = snap(2, &[("a", b"old"), ("b", b"2")]);
        let t = recover_two_tier(Some(&cur), None, &[(1, seg0), (3, seg1)]);
        assert_eq!(t.report.records, 3);
        assert_eq!(t.report.replayed, 1, "only the suffix record replays");
        assert_eq!(t.records[0].seq, 3);
    }

    #[test]
    fn two_tier_falls_back_to_previous_snapshot() {
        let seg = record(2, 2, &[("b", Some(b"2"))]);
        let mut cur = snap(3, &[("a", b"new")]);
        let n = cur.len();
        cur[n - 1] ^= 0xff; // corrupt the current snapshot
        let prev = snap(1, &[("a", b"old")]);
        let t = recover_two_tier(Some(&cur), Some(&prev), &[(2, seg)]);
        assert_eq!(t.report.snapshot_source, SnapshotSource::Previous);
        assert_eq!(t.report.snapshot_cut, 1);
        assert_eq!(t.report.replayed, 1);
        assert_eq!(t.base.get("a").map(|v| v.as_ref()), Some(&b"old"[..]));
    }

    #[test]
    fn two_tier_discards_suffix_with_a_hole() {
        // Snapshot at cut 1 but the only segment starts at 5: records
        // 2..=4 are gone, so the suffix is unreplayable and the store
        // recovers to the snapshot alone.
        let seg = record(5, 5, &[("z", Some(b"5"))]);
        let cur = snap(1, &[("a", b"1")]);
        let t = recover_two_tier(Some(&cur), None, &[(5, seg)]);
        assert_eq!(t.report.replayed, 0);
        assert!(t.records.is_empty());
        assert_eq!(t.report.end, ScanEnd::BadSequence);
        assert_eq!(t.active, None, "segments are unusable");
        assert_eq!(t.keep, vec![None]);
        assert_eq!(t.next_seq, 2, "appends restart right after the cut");
    }

    #[test]
    fn two_tier_without_any_snapshot_matches_plain_scan() {
        let mut seg = record(1, 1, &[("a", Some(b"1"))]);
        seg.extend(record(2, 2, &[("b", Some(b"2"))]));
        let t = recover_two_tier(None, None, &[(1, seg.clone())]);
        let (recs, rep) = scan(&seg, 1);
        assert_eq!(t.records, recs);
        assert_eq!(t.report.records, rep.records);
        assert_eq!(t.report.snapshot_source, SnapshotSource::None);
        assert_eq!(t.report.replayed, 2);
    }
}
