//! In-memory table of recent *committed, durable* writes — the volatile
//! half of the two-tier durable store (`snapshot + WAL suffix`).
//!
//! The memtable is populated from the same deferred ops that append redo
//! records to the WAL: a deferred op calls [`Wal::append_durable`] first
//! (so the bytes are fsynced) and then [`MemTable::apply`] with the
//! sequence number it was assigned, *while the shard `TxLock`s are still
//! held*. Two consequences fall out of that ordering by construction:
//!
//! - every entry in the memtable is durable (its redo record is inside
//!   the synced WAL prefix), so a reader of the memtable can never
//!   observe volatile bytes; and
//! - per key, applies arrive in WAL-sequence order (two records touching
//!   the same key serialize on the shard lock, and WAL sequence order
//!   agrees with commit order), so last-writer-wins by `seq` is exact.
//!
//! The table is split into `base` — the state as of the last snapshot
//! (or recovery) — and `delta` — entries applied since, each tagged with
//! the WAL sequence that produced it. The checkpointer freezes
//! `base ⊎ delta≤cut` at a quiescent cut (see [`crate::checkpoint`]),
//! publishes it, and then folds the frozen delta into `base` with
//! [`MemTable::compact_through`].
//!
//! [`Wal::append_durable`]: crate::wal::Wal::append_durable

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ad_support::sync::{Condvar, Mutex};

/// One memtable mutation: interned key → new value (`None` deletes).
pub type MemOp = (Arc<str>, Option<Arc<[u8]>>);

/// A sorted image of the committed key space — the memtable's base,
/// a frozen checkpoint, or a decoded snapshot.
pub type KeyMap = BTreeMap<Arc<str>, Arc<[u8]>>;

/// A delta entry: the WAL sequence that produced it and the value
/// (`None` is a tombstone — the key was deleted).
#[derive(Debug, Clone)]
struct MemEntry {
    seq: u64,
    value: Option<Arc<[u8]>>,
}

#[derive(Debug)]
struct Inner {
    /// State as of the last snapshot (or recovery). No tombstones.
    base: KeyMap,
    /// Entries applied since `base`, tombstone-aware, tagged with seq.
    delta: BTreeMap<Arc<str>, MemEntry>,
    /// Highest `w` such that every sequence in `1..=w` has been applied
    /// (or predates this process: recovery seeds it with the last
    /// recovered sequence).
    watermark: u64,
    /// Sequences applied out of order, above the watermark.
    pending: BTreeSet<u64>,
}

/// Sorted in-memory layer of recent committed writes; see the module
/// docs for the invariants.
pub struct MemTable {
    inner: Mutex<Inner>,
    applied_cv: Condvar,
}

impl MemTable {
    /// A memtable whose `base` is `base` and whose applied watermark
    /// starts at `applied_through` (the last WAL sequence already folded
    /// into `base` — recovery passes the last replayed sequence).
    pub fn with_base(base: KeyMap, applied_through: u64) -> Self {
        MemTable {
            inner: Mutex::new(Inner {
                base,
                delta: BTreeMap::new(),
                watermark: applied_through,
                pending: BTreeSet::new(),
            }),
            applied_cv: Condvar::new(),
        }
    }

    /// An empty memtable with no history.
    pub fn new() -> Self {
        Self::with_base(BTreeMap::new(), 0)
    }

    /// Record the ops of the redo record `seq`. Called from the deferred
    /// op *after* `append_durable` returned, so every applied entry is
    /// already inside the synced WAL prefix.
    pub fn apply(&self, seq: u64, ops: &[MemOp]) {
        let mut g = self.inner.lock();
        for (key, value) in ops {
            match g.delta.get(key.as_ref()) {
                // Per-key applies arrive in seq order (shard-lock
                // serialized); the guard is belt-and-braces.
                Some(e) if e.seq > seq => {}
                _ => {
                    g.delta.insert(
                        key.clone(),
                        MemEntry {
                            seq,
                            value: value.clone(),
                        },
                    );
                }
            }
        }
        // Advance the contiguous-applied watermark.
        if seq == g.watermark + 1 {
            g.watermark = seq;
            while g.pending.first() == Some(&(g.watermark + 1)) {
                g.pending.pop_first();
                g.watermark += 1;
            }
            self.applied_cv.notify_all();
        } else if seq > g.watermark {
            g.pending.insert(seq);
        }
    }

    /// Durable-tier read: delta first (tombstone-aware), then base.
    /// Returns `None` for absent *or deleted* keys.
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        let g = self.inner.lock();
        if let Some(e) = g.delta.get(key) {
            return e.value.clone();
        }
        g.base.get(key).cloned()
    }

    /// Durable-tier range scan: up to `limit` live `(key, value)` pairs
    /// with `key >= start`, in key order, merging base and delta
    /// (tombstones suppress base entries).
    pub fn scan_from(&self, start: &str, limit: usize) -> Vec<(Arc<str>, Arc<[u8]>)> {
        let g = self.inner.lock();
        let mut out = Vec::new();
        let mut base = g
            .base
            .range::<str, _>((std::ops::Bound::Included(start), std::ops::Bound::Unbounded));
        let mut delta = g
            .delta
            .range::<str, _>((std::ops::Bound::Included(start), std::ops::Bound::Unbounded));
        let (mut b, mut d) = (base.next(), delta.next());
        while out.len() < limit {
            match (b, d) {
                (Some((bk, bv)), Some((dk, de))) => {
                    if bk < dk {
                        out.push((bk.clone(), bv.clone()));
                        b = base.next();
                    } else {
                        if bk == dk {
                            b = base.next();
                        }
                        if let Some(v) = &de.value {
                            out.push((dk.clone(), v.clone()));
                        }
                        d = delta.next();
                    }
                }
                (Some((bk, bv)), None) => {
                    out.push((bk.clone(), bv.clone()));
                    b = base.next();
                }
                (None, Some((dk, de))) => {
                    if let Some(v) = &de.value {
                        out.push((dk.clone(), v.clone()));
                    }
                    d = delta.next();
                }
                (None, None) => break,
            }
        }
        out
    }

    /// Block until every sequence `<= seq` has been applied. The
    /// checkpointer calls this after picking a cut: every record at or
    /// below the cut is durable, so its applier is already past the
    /// fsync and will reach `apply` without waiting on us.
    pub fn wait_applied_through(&self, seq: u64) {
        let mut g = self.inner.lock();
        while g.watermark < seq {
            self.applied_cv.wait(&mut g);
        }
    }

    /// The contiguous-applied watermark (for tests and stats).
    pub fn applied_through(&self) -> u64 {
        self.inner.lock().watermark
    }

    /// A frozen copy of `base ⊎ delta≤cut` — a *fuzzy* image of the
    /// committed state at WAL sequence `cut`: a key rewritten by a record
    /// with `seq > cut` reflects the rewrite's shadow, not its value at
    /// the cut (the delta keeps one entry per key). That is exactly
    /// right for checkpointing — every such key's later record is in the
    /// retained WAL suffix (`seq > cut`) and suffix replay rewrites the
    /// key on recovery, so `snapshot + suffix` is always the exact
    /// state. Cheap: values are `Arc`-shared, only the key map is
    /// cloned, and nothing is held locked while the caller serializes
    /// the result.
    pub fn freeze_through(&self, cut: u64) -> KeyMap {
        let g = self.inner.lock();
        let mut out = g.base.clone();
        for (k, e) in &g.delta {
            if e.seq <= cut {
                match &e.value {
                    Some(v) => {
                        out.insert(k.clone(), v.clone());
                    }
                    None => {
                        out.remove(k.as_ref());
                    }
                }
            }
        }
        out
    }

    /// Fold delta entries with `seq <= cut` into base (after the
    /// snapshot at `cut` has been durably published).
    pub fn compact_through(&self, cut: u64) {
        let mut g = self.inner.lock();
        let drained = std::mem::take(&mut g.delta);
        for (k, e) in drained {
            if e.seq <= cut {
                match e.value {
                    Some(v) => {
                        g.base.insert(k, v);
                    }
                    None => {
                        g.base.remove(k.as_ref());
                    }
                }
            } else {
                g.delta.insert(k, e);
            }
        }
    }

    /// Number of live keys (base plus delta, tombstones excluded).
    pub fn len(&self) -> usize {
        let g = self.inner.lock();
        let mut n = g.base.len();
        for (k, e) in &g.delta {
            match (&e.value, g.base.contains_key(k.as_ref())) {
                (Some(_), false) => n += 1,
                (None, true) => n -= 1,
                _ => {}
            }
        }
        n
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn k(s: &str) -> Arc<str> {
        Arc::from(s)
    }
    fn v(s: &str) -> Option<Arc<[u8]>> {
        Some(Arc::from(s.as_bytes()))
    }

    #[test]
    fn get_merges_delta_over_base() {
        let mut base = BTreeMap::new();
        base.insert(k("a"), Arc::from(&b"old"[..]));
        base.insert(k("b"), Arc::from(&b"keep"[..]));
        let mt = MemTable::with_base(base, 4);
        mt.apply(5, &[(k("a"), v("new")), (k("c"), v("add"))]);
        mt.apply(6, &[(k("b"), None)]);

        assert_eq!(mt.get("a").as_deref(), Some(&b"new"[..]));
        assert_eq!(mt.get("b"), None, "tombstone shadows base");
        assert_eq!(mt.get("c").as_deref(), Some(&b"add"[..]));
        assert_eq!(mt.len(), 2);
    }

    #[test]
    fn watermark_tolerates_out_of_order_applies() {
        let mt = MemTable::new();
        mt.apply(2, &[(k("x"), v("2"))]);
        assert_eq!(mt.applied_through(), 0, "gap at 1 holds the watermark");
        mt.apply(3, &[(k("y"), v("3"))]);
        mt.apply(1, &[(k("z"), v("1"))]);
        assert_eq!(mt.applied_through(), 3, "filling the gap drains pending");
        mt.wait_applied_through(3); // must not block
    }

    #[test]
    fn freeze_respects_cut_and_compact_folds() {
        let mt = MemTable::new();
        mt.apply(1, &[(k("a"), v("1"))]);
        mt.apply(2, &[(k("b"), v("2"))]);
        mt.apply(3, &[(k("a"), None)]);

        // Fuzzy at the cut: "a" was rewritten at seq 3 > 2, so the image
        // omits it — sound, because record 3 is in the retained suffix
        // and replay settles "a" on recovery.
        let at2 = mt.freeze_through(2);
        assert!(!at2.contains_key("a"), "post-cut rewrite shadows the key");
        assert_eq!(at2.get("b").map(|x| x.as_ref()), Some(&b"2"[..]));

        let at3 = mt.freeze_through(3);
        assert!(!at3.contains_key("a"), "cut 3 sees the delete");

        mt.compact_through(2);
        // Post-compaction reads are unchanged: "a" deleted at 3 (still
        // in delta), "b" now in base.
        assert_eq!(mt.get("a"), None);
        assert_eq!(mt.get("b").as_deref(), Some(&b"2"[..]));
        mt.compact_through(3);
        assert_eq!(mt.get("a"), None);
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn scan_merges_and_suppresses_tombstones() {
        let mut base = BTreeMap::new();
        base.insert(k("a"), Arc::from(&b"1"[..]));
        base.insert(k("c"), Arc::from(&b"3"[..]));
        let mt = MemTable::with_base(base, 1);
        mt.apply(2, &[(k("b"), v("2")), (k("c"), None)]);

        let all = mt.scan_from("", 10);
        let keys: Vec<&str> = all.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, ["a", "b"]);
        let from_b = mt.scan_from("b", 1);
        assert_eq!(from_b.len(), 1);
        assert_eq!(from_b[0].0.as_ref(), "b");
    }
}
