//! Cross-crate integration tests: the full stack (ad-stm → ad-defer →
//! ad-dedup / ad-workloads) exercised through the public API, the way the
//! examples and benches use it.

use std::sync::Arc;

use ad_dedup::backend::tm::{TmBackend, TmFlavor};
use ad_dedup::backend::{BackendConfig, SinkTarget};
use ad_dedup::corpus::{generate, CorpusParams};
use ad_dedup::pipeline::{run_pipeline_verified, PipelineConfig};
use ad_dedup::LockBackend;
use ad_stm::{Runtime, TmConfig};
use ad_workloads::{run_iobench, IoBenchConfig, Variant};

#[test]
fn dedup_all_backends_agree_and_verify() {
    let corpus = Arc::new(generate(
        &CorpusParams::new(300_000).with_dup_ratio(0.6).with_seed(77),
    ));
    let mut reports = Vec::new();

    let lock_backend = LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap();
    reports.push(run_pipeline_verified(
        &corpus,
        &PipelineConfig::tiny(3),
        &lock_backend,
    ));

    for (cfg, flavor) in [
        (TmConfig::stm(), TmFlavor::Baseline),
        (TmConfig::stm(), TmFlavor::DeferIo),
        (TmConfig::stm(), TmFlavor::DeferAll),
        (TmConfig::htm(), TmFlavor::Baseline),
        (TmConfig::htm(), TmFlavor::DeferIo),
        (TmConfig::htm(), TmFlavor::DeferAll),
    ] {
        let backend = TmBackend::new(
            Runtime::new(cfg),
            flavor,
            BackendConfig::default(),
            SinkTarget::Memory,
        )
        .unwrap();
        reports.push(run_pipeline_verified(
            &corpus,
            &PipelineConfig::tiny(3),
            &backend,
        ));
    }

    // Every backend chunks identically, so chunk/unique counts must agree.
    for w in reports.windows(2) {
        assert_eq!(
            w[0].total_chunks, w[1].total_chunks,
            "{} vs {}",
            w[0].label, w[1].label
        );
        assert_eq!(
            w[0].unique_chunks, w[1].unique_chunks,
            "{} vs {}",
            w[0].label, w[1].label
        );
        assert_eq!(
            w[0].bytes_out, w[1].bytes_out,
            "{} vs {}",
            w[0].label, w[1].label
        );
    }
    assert!(
        reports[0].duplicate_chunks > 0,
        "corpus produced no duplicates"
    );
}

#[test]
fn dedup_mechanism_signatures_match_the_paper() {
    // The *reasons* behind Figure 3, checked as hard assertions:
    let corpus = Arc::new(generate(&CorpusParams::new(200_000).with_seed(5)));

    // STM baseline: irrevocable output ⇒ serializations.
    let stm = TmBackend::new(
        Runtime::new(TmConfig::stm()),
        TmFlavor::Baseline,
        BackendConfig::default(),
        SinkTarget::Memory,
    )
    .unwrap();
    run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &stm);
    let s = stm.runtime().stats();
    assert!(s.serializations > 0, "STM baseline must serialize: {s}");

    // STM+DeferAll: no serialization at all.
    let da = TmBackend::new(
        Runtime::new(TmConfig::stm()),
        TmFlavor::DeferAll,
        BackendConfig::default(),
        SinkTarget::Memory,
    )
    .unwrap();
    run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &da);
    let s = da.runtime().stats();
    assert_eq!(
        s.aborts_unsupported, 0,
        "DeferAll must never need serial mode: {s}"
    );
    assert!(s.deferred_ops > 0);

    // HTM baseline: compression overflows capacity.
    let htm = TmBackend::new(
        Runtime::new(TmConfig::htm()),
        TmFlavor::Baseline,
        BackendConfig::default(),
        SinkTarget::Memory,
    )
    .unwrap();
    run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &htm);
    let s = htm.runtime().stats();
    assert!(s.aborts_capacity > 0, "HTM baseline must hit capacity: {s}");

    // HTM+DeferAll: compression out of the transaction ⇒ no capacity aborts.
    let hda = TmBackend::new(
        Runtime::new(TmConfig::htm()),
        TmFlavor::DeferAll,
        BackendConfig::default(),
        SinkTarget::Memory,
    )
    .unwrap();
    run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &hda);
    let s = hda.runtime().stats();
    assert_eq!(s.aborts_capacity, 0, "HTM+DeferAll must fit capacity: {s}");
}

#[test]
fn iobench_every_variant_every_mode_completes() {
    for htm in [false, true] {
        for keep_open in [false, true] {
            let cfg = IoBenchConfig::new(2, 120)
                .with_keep_open(keep_open)
                .with_htm(htm);
            for variant in Variant::all() {
                let m = run_iobench(&cfg, variant, 2);
                assert!(
                    m.elapsed.as_nanos() > 0,
                    "{variant:?} htm={htm} keep_open={keep_open}"
                );
            }
        }
    }
}

#[test]
fn archive_file_output_roundtrips_through_disk() {
    let mut path = std::env::temp_dir();
    path.push(format!("ad_e2e_archive_{}.bin", std::process::id()));
    let corpus = Arc::new(generate(&CorpusParams::new(150_000).with_seed(9)));
    let backend = TmBackend::new(
        Runtime::new(TmConfig::stm()),
        TmFlavor::DeferIo,
        BackendConfig::default(),
        SinkTarget::File(path.clone()),
    )
    .unwrap();
    run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &backend);
    // Independently re-read the file and reconstruct.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(ad_dedup::format::reconstruct(&bytes).unwrap(), **corpus);
    let _ = std::fs::remove_file(&path);
}
