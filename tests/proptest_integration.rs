//! Cross-crate property tests driven through the public API.
//!
//! Seeded randomized cases over `ad_support::prng` (the `proptest` crate is
//! unavailable offline); failures reproduce from the printed case number.

use ad_support::prng::Rng;
use std::sync::Arc;

use ad_dedup::backend::tm::{TmBackend, TmFlavor};
use ad_dedup::backend::{BackendConfig, SinkTarget};
use ad_dedup::pipeline::{run_pipeline_verified, PipelineConfig};
use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, TVar, TmConfig};

/// The dedup pipeline reconstructs ARBITRARY byte streams (not just the
/// corpus generator's output), for every TM flavour.
#[test]
fn dedup_roundtrips_arbitrary_bytes() {
    for case in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0x1F_0001 + case);
        let len = rng.random_range(0..40_000);
        let mut data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let dup = rng.random_range(0..4);
        // Append duplicated tails to force reference records sometimes.
        let snapshot = data.clone();
        for _ in 0..dup {
            data.extend_from_slice(&snapshot[..snapshot.len().min(5_000)]);
        }
        let corpus = Arc::new(data);
        let backend = TmBackend::new(
            Runtime::new(TmConfig::stm()),
            TmFlavor::DeferAll,
            BackendConfig::default(),
            SinkTarget::Memory,
        )
        .unwrap();
        // run_pipeline_verified panics on any mismatch.
        let report = run_pipeline_verified(&corpus, &PipelineConfig::tiny(2), &backend);
        assert_eq!(report.bytes_in as usize, corpus.len(), "case {case}");
    }
}

/// Deferral order equals call order for arbitrary sequences of deferred
/// operations within one transaction.
#[test]
fn deferred_ops_run_in_call_order() {
    struct Obj {
        log: TVar<Vec<usize>>,
    }
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0x1F_0002 + case);
        let n = rng.random_range(1..20);
        let obj = Defer::new(Obj {
            log: TVar::new(Vec::new()),
        });
        let rt = Runtime::new(TmConfig::stm());
        let o = obj.clone();
        rt.atomically(move |tx| {
            for i in 0..n {
                let o2 = o.clone();
                atomic_defer(tx, &[&o.clone()], move || {
                    o2.locked().log.update_locked(|mut l| {
                        l.push(i);
                        l
                    });
                })?;
            }
            Ok(())
        });
        let log = obj.peek_unsynchronized().log.load();
        assert_eq!(log, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

/// Concurrent transfers with deferred audit entries: totals always
/// reconcile no matter the interleaving parameters.
#[test]
fn deferred_audit_reconciles() {
    struct Ledger {
        committed: TVar<u64>,
        audited: TVar<u64>,
    }
    for case in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0x1F_0003 + case);
        let threads = rng.random_range(1..4);
        let per = rng.random_range(1..60);
        let rt = Runtime::new(TmConfig::stm());
        let ledger = Arc::new(Defer::new(Ledger {
            committed: TVar::new(0),
            audited: TVar::new(0),
        }));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let ledger = Arc::clone(&ledger);
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        let l2 = Arc::clone(&ledger);
                        rt.atomically(move |tx| {
                            l2.with(tx, |f, tx| tx.modify(&f.committed, |c| c + 1))?;
                            let l3 = Arc::clone(&l2);
                            atomic_defer(tx, &[&*l2], move || {
                                l3.locked().audited.update_locked(|a| a + 1);
                            })
                        });
                    }
                });
            }
        });
        let f = ledger.peek_unsynchronized();
        assert_eq!(f.committed.load(), (threads * per) as u64, "case {case}");
        assert_eq!(f.audited.load(), (threads * per) as u64, "case {case}");
    }
}
