//! Stress tests of the paper's central claim: a transaction and its
//! deferred operations appear atomic to every other transaction
//! (serializability via two-phase locking, §4.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, TVar, TmConfig};

/// A bank whose ledger (TVar) is updated transactionally and whose "audit
/// trail" is appended by a deferred operation. Invariant observable by any
/// transaction: trail length == number of committed transfers.
struct Bank {
    balance: TVar<i64>,
    transfers: TVar<u64>,
    trail_len: TVar<u64>,
}

fn stress(rt: &Runtime, threads: usize, transfers_per_thread: usize) {
    let bank = Arc::new(Defer::new(Bank {
        balance: TVar::new(0),
        transfers: TVar::new(0),
        trail_len: TVar::new(0),
    }));
    let violations = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Observer: under subscription, transfers == trail_len always.
        let (b, v, st, rt2) = (
            Arc::clone(&bank),
            Arc::clone(&violations),
            Arc::clone(&stop),
            rt.clone(),
        );
        let observer = s.spawn(move || {
            while !st.load(Ordering::Relaxed) {
                let (t, l) = rt2.atomically(|tx| {
                    b.with(tx, |f, tx| {
                        let t = tx.read(&f.transfers)?;
                        let l = tx.read(&f.trail_len)?;
                        Ok((t, l))
                    })
                });
                if t != l {
                    v.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        for _ in 0..threads {
            let bank = Arc::clone(&bank);
            let rt2 = rt.clone();
            s.spawn(move || {
                for i in 0..transfers_per_thread {
                    let bank2 = Arc::clone(&bank);
                    rt2.atomically(move |tx| {
                        bank2.with(tx, |f, tx| {
                            tx.modify(&f.balance, |b| b + (i as i64 % 7) - 3)?;
                            tx.modify(&f.transfers, |t| t + 1)
                        })?;
                        let bank3 = Arc::clone(&bank2);
                        atomic_defer(tx, &[&*bank2], move || {
                            // The "audit write": slow, non-transactional,
                            // protected by the object's lock.
                            std::hint::spin_loop();
                            bank3.locked().trail_len.update_locked(|l| l + 1);
                        })
                    });
                }
            });
        }

        // Let workers finish, then stop the observer.
        // (scope joins workers automatically; signal after spawning by
        // joining workers via a separate scope is simpler:)
        drop(observer); // handle not needed; observer exits via `stop`
        s.spawn(move || {
            // Watchdog thread flips `stop` once all transfers are visible.
            loop {
                let done = bank.peek_unsynchronized().transfers.load()
                    == (threads * transfers_per_thread) as u64;
                if done {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "observer saw transfers != trail_len: deferral atomicity violated"
    );
}

#[test]
fn deferral_is_serializable_under_stress_stm() {
    stress(&Runtime::new(TmConfig::stm()), 4, 300);
}

#[test]
fn deferral_is_serializable_under_stress_htm() {
    stress(&Runtime::new(TmConfig::htm()), 4, 300);
}

#[test]
fn deferral_is_serializable_with_parking_retry() {
    stress(
        &Runtime::new(TmConfig::stm().with_retry_policy(ad_stm::RetryPolicy::Park)),
        3,
        200,
    );
}

#[test]
fn two_phase_locking_across_two_objects() {
    // A deferred op updates two deferrable objects; observers must see them
    // change together.
    let rt = Runtime::new(TmConfig::stm());
    struct Cell {
        v: TVar<u64>,
    }
    let x = Defer::new(Cell { v: TVar::new(0) });
    let y = Defer::new(Cell { v: TVar::new(0) });
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let (x2, y2, st, vio, rt2) = (
            x.clone(),
            y.clone(),
            Arc::clone(&stop),
            Arc::clone(&violations),
            rt.clone(),
        );
        s.spawn(move || {
            while !st.load(Ordering::Relaxed) {
                let (a, b) = rt2.atomically(|tx| {
                    let a = x2.with(tx, |c, tx| tx.read(&c.v))?;
                    let b = y2.with(tx, |c, tx| tx.read(&c.v))?;
                    Ok((a, b))
                });
                if a != b {
                    vio.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        let (x3, y3, rt3) = (x.clone(), y.clone(), rt.clone());
        s.spawn(move || {
            for _ in 0..200 {
                let (x4, y4) = (x3.clone(), y3.clone());
                rt3.atomically(move |tx| {
                    let (x5, y5) = (x4.clone(), y4.clone());
                    atomic_defer(tx, &[&x4.clone(), &y4.clone()], move || {
                        x5.locked().v.update_locked(|v| v + 1);
                        // A window where x != y — must be invisible.
                        std::hint::spin_loop();
                        y5.locked().v.update_locked(|v| v + 1);
                    })
                });
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(violations.load(Ordering::Relaxed), 0);
    assert_eq!(x.peek_unsynchronized().v.load(), 200);
    assert_eq!(y.peek_unsynchronized().v.load(), 200);
}
