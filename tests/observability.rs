//! Integration tests for the observability layer: the latency histograms
//! and the event trace must tell the paper's story end to end.
//!
//! * The Figure 1 motivation scenario — a long operation inside a
//!   transaction — must show up in the `quiesce_wait_ns` histogram: an
//!   unrelated writer's p99 quiescence wait is the long-op duration.
//! * The event timeline must respect the deferral lifecycle per committed
//!   transaction: `begin` → `defer_enqueue` → `commit` →
//!   `defer_exec_start` → `defer_exec_end`, with enqueue/exec indices
//!   matching.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use ad_defer::{atomic_defer, Defer};
use ad_stm::{EventKind, Runtime, TVar, TmConfig};

/// The asserted long-op duration. The stalled transaction starts *after*
/// the long transaction has begun, so its quiescence wait is the long op
/// minus scheduling latency; the long transaction sleeps `LONG_OP` plus a
/// 10ms allowance so the histogram's p99 still clears `LONG_OP` itself.
const LONG_OP: Duration = Duration::from_millis(25);
const SCHED_ALLOWANCE: Duration = Duration::from_millis(10);

#[test]
fn quiesce_histogram_p99_covers_long_op_stall() {
    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(true);

    let a = TVar::new(0u64);
    let d = TVar::new(0u64);
    let t1_running = AtomicBool::new(false);

    std::thread::scope(|s| {
        // T1: a transaction whose body performs a long operation (the
        // paper's Figure 1 `Operate(C)` inlined in the transaction).
        s.spawn(|| {
            rt.atomically(|tx| {
                tx.modify(&a, |x| x + 1)?;
                t1_running.store(true, Ordering::Release);
                std::thread::sleep(LONG_OP + SCHED_ALLOWANCE);
                Ok(())
            });
        });

        // T3: entirely disjoint (touches only D), but as a committing
        // writer it must quiesce behind T1's still-running transaction.
        s.spawn(|| {
            while !t1_running.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            rt.atomically(|tx| tx.modify(&d, |x| x + 1));
        });
    });

    let report = rt.snapshot_stats();
    let q = &report.quiesce_wait_ns;
    assert!(q.count() >= 1, "no quiescence waits recorded: {report}");
    assert!(
        q.quantile(0.99) >= LONG_OP.as_nanos() as u64,
        "quiesce p99 {}ns < long op {}ns — the stall the paper motivates \
         with is not visible in the histogram",
        q.quantile(0.99),
        LONG_OP.as_nanos()
    );

    // The same stall must appear on the event timeline as a
    // quiesce_enter/quiesce_exit pair.
    let trace = rt.take_trace();
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.kind == EventKind::QuiesceExit && e.arg >= LONG_OP.as_nanos() as u64),
        "no quiesce_exit event with waited >= long op:\n{}",
        trace.render()
    );
}

#[test]
fn defer_events_are_ordered_per_committed_transaction() {
    const OPS: usize = 48;
    const THREADS: usize = 2;

    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(true);

    struct Sink {
        applied: AtomicU64,
    }
    let counters: Vec<TVar<u64>> = (0..2).map(|_| TVar::new(0)).collect();
    let sink = Defer::new(Sink {
        applied: AtomicU64::new(0),
    });

    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= OPS {
                    break;
                }
                let slot = i % counters.len();
                rt.atomically(|tx| {
                    let v = tx.read(&counters[slot])?;
                    tx.write(&counters[slot], v + 1)?;
                    let sink2 = sink.clone();
                    atomic_defer(tx, &[&sink], move || {
                        sink2.locked().applied.fetch_add(1, Ordering::Relaxed);
                    })
                });
            });
        }
    });
    assert_eq!(
        sink.peek_unsynchronized().applied.load(Ordering::Relaxed),
        OPS as u64
    );

    let report = rt.snapshot_stats();
    assert_eq!(report.counters.deferred_ops, OPS as u64);
    assert_eq!(report.defer_queue_to_done_ns.count(), OPS as u64);

    let trace = rt.take_trace();
    assert_eq!(trace.dropped, 0, "ring overflow would break the check");

    let mut execs_seen = 0u64;
    let threads: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.thread).collect();
    for t in threads {
        // Deferred actions run post-commit on the thread that committed, so
        // the lifecycle is checkable per-thread: walk the stream keeping the
        // indices enqueued by the currently open transaction; a commit
        // transfers them to the expected-exec queue; exec events must drain
        // that queue in order. (An aborted attempt re-begins before its
        // retry, clearing its enqueues — their deferred ops never run.)
        let mut open_tx: Vec<u64> = Vec::new();
        let mut expected: std::collections::VecDeque<u64> = Default::default();
        let mut started: Option<u64> = None;
        for e in trace.thread_events(t) {
            match e.kind {
                // A begin inside a deferred action is the lock-release
                // transaction; top-level begins discard aborted enqueues.
                EventKind::Begin if started.is_none() => open_tx.clear(),
                EventKind::DeferEnqueue => open_tx.push(e.arg),
                EventKind::Commit if started.is_none() => {
                    expected.extend(open_tx.drain(..));
                }
                EventKind::DeferExecStart => {
                    assert_eq!(
                        expected.front(),
                        Some(&e.arg),
                        "exec_start out of order on thread {t}:\n{}",
                        trace.render()
                    );
                    assert!(started.is_none(), "nested deferred execution");
                    started = Some(e.arg);
                }
                EventKind::DeferExecEnd => {
                    assert_eq!(started.take(), Some(e.arg), "unpaired exec_end");
                    assert_eq!(expected.pop_front(), Some(e.arg));
                    execs_seen += 1;
                }
                _ => {}
            }
        }
        assert!(
            expected.is_empty() && started.is_none(),
            "thread {t} committed deferred ops that never executed"
        );
    }
    assert_eq!(execs_seen, OPS as u64, "every committed op must execute");
}

#[test]
fn defer_events_are_ordered_under_pool_executor() {
    const OPS: usize = 48;
    const THREADS: usize = 2;

    let rt = Runtime::new(TmConfig::stm().with_defer_pool(2, 64));
    rt.set_tracing(true);

    struct Sink {
        applied: AtomicU64,
    }
    let counters: Vec<TVar<u64>> = (0..2).map(|_| TVar::new(0)).collect();
    let sink = Defer::new(Sink {
        applied: AtomicU64::new(0),
    });

    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= OPS {
                    break;
                }
                let slot = i % counters.len();
                rt.atomically(|tx| {
                    let v = tx.read(&counters[slot])?;
                    tx.write(&counters[slot], v + 1)?;
                    let sink2 = sink.clone();
                    atomic_defer(tx, &[&sink], move || {
                        sink2.locked().applied.fetch_add(1, Ordering::Relaxed);
                    })
                });
            });
        }
    });
    // Pool execution is asynchronous w.r.t. the committing threads.
    rt.drain_deferred();
    assert_eq!(
        sink.peek_unsynchronized().applied.load(Ordering::Relaxed),
        OPS as u64
    );

    let report = rt.snapshot_stats();
    assert_eq!(report.counters.deferred_ops, OPS as u64);
    // One batch per transaction, every one offloaded to the pool.
    assert_eq!(report.counters.defer_offloads, OPS as u64);
    assert_eq!(report.defer_queue_to_done_ns.count(), OPS as u64);
    assert_eq!(report.defer_queue_wait_ns.count(), OPS as u64);

    let trace = rt.take_trace();
    assert_eq!(trace.dropped, 0, "ring overflow would break the check");

    let offloads = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::DeferOffload)
        .count();
    assert_eq!(offloads, OPS, "one defer_offload event per committed batch");

    // Ops must run on pool workers, never on a committing thread: the
    // thread sets emitting enqueues and execs are disjoint.
    let enqueue_threads: std::collections::BTreeSet<u32> = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::DeferEnqueue)
        .map(|e| e.thread)
        .collect();
    let exec_threads: std::collections::BTreeSet<u32> = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::DeferExecStart)
        .map(|e| e.thread)
        .collect();
    assert!(
        enqueue_threads.is_disjoint(&exec_threads),
        "a deferred op ran on a committing thread under the pool executor:\n{}",
        trace.render()
    );

    // Per worker thread, exec start/end pair up in order with matching
    // queue indices (ops of one batch run in call order on one worker).
    let mut execs_seen = 0u64;
    for &t in &exec_threads {
        let mut started: Option<u64> = None;
        for e in trace.thread_events(t) {
            match e.kind {
                EventKind::DeferExecStart => {
                    assert!(started.is_none(), "nested deferred execution");
                    started = Some(e.arg);
                }
                EventKind::DeferExecEnd => {
                    assert_eq!(started.take(), Some(e.arg), "unpaired exec_end");
                    execs_seen += 1;
                }
                _ => {}
            }
        }
        assert!(started.is_none(), "worker {t} left an exec span open");
    }
    assert_eq!(execs_seen, OPS as u64, "every committed op must execute");
}
