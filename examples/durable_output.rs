//! Paper §5.2 (Listing 4): durable output with guaranteed cross-file order.
//!
//! A "journal" file must reach the disk (fsync) before the "index" file is
//! updated. Thread T2 subscribes to the journal buffer's durability flag
//! and retries until T1's deferred write+fsync has completed — the flag is
//! set while the buffer's implicit lock is held, so T2 can never observe
//! "flag set" without "data durable".
//!
//! ```text
//! cargo run --release --example durable_output
//! ```

use ad_defer::io::{durable_write, DeferBuffer, DurableFile};
use ad_stm::atomically;

fn main() {
    let dir = std::env::temp_dir();
    let journal_path = dir.join(format!("ad_example_journal_{}.dat", std::process::id()));
    let index_path = dir.join(format!("ad_example_index_{}.dat", std::process::id()));

    let journal = DurableFile::create(&journal_path).expect("create journal");
    let index = DurableFile::create(&index_path).expect("create index");
    let journal_buf = DeferBuffer::new(b"journal-entry: balance=70\n".to_vec());
    let index_buf = DeferBuffer::new(b"index-entry: journal@0\n".to_vec());

    // T2: update the index only once the journal entry is durable.
    let (jb, idx, ib) = (journal_buf.clone(), index.clone(), index_buf.clone());
    let t2 = std::thread::spawn(move || {
        atomically(|tx| {
            // Listing 4 lines 7–8: subscribe and check the flag; retry
            // until the journal's fsync has completed.
            jb.await_synced(tx)?;
            durable_write(tx, &idx, &ib)
        });
        println!("T2: index written (journal was durable)");
    });

    // Give T2 a head start so the ordering is actually exercised.
    std::thread::sleep(std::time::Duration::from_millis(50));
    println!("T1: writing journal (deferred write + fsync + flag)");
    atomically(|tx| durable_write(tx, &journal, &journal_buf));
    t2.join().unwrap();

    let journal_bytes = std::fs::read(&journal_path).unwrap();
    let index_bytes = std::fs::read(&index_path).unwrap();
    println!(
        "journal: {:?}",
        String::from_utf8_lossy(&journal_bytes).trim()
    );
    println!(
        "index:   {:?}",
        String::from_utf8_lossy(&index_bytes).trim()
    );
    assert!(!journal_bytes.is_empty() && !index_bytes.is_empty());

    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&index_path);
    println!("durable_output example OK");
}
