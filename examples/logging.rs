//! Paper §5.1 (Listing 3): diagnostic logging from critical sections
//! without serializing — the memcached / Atomic Quake use case.
//!
//! Four threads hammer a shared table in transactions; every operation logs
//! a line derived from *mutable shared data*. With plain TM this `fprintf`
//! would force irrevocability (serializing everything); with
//! `atomic_defer` the line is formatted inside the transaction and written
//! after commit, atomically as far as any transaction can tell.
//!
//! ```text
//! cargo run --release --example logging
//! ```

use ad_defer::io::{DeferLogger, MemorySink};
use ad_stm::{atomically, Runtime, TVar};

fn main() {
    let sink = MemorySink::new();
    let logger = DeferLogger::new(Box::new(sink.clone()));
    let table: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(0)).collect();

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let logger = logger.clone();
            let table = &table;
            s.spawn(move || {
                for i in 0..25u64 {
                    let slot = ((t * 25 + i) % 8) as usize;
                    atomically(|tx| {
                        // x and i are "mutable shared data" (Listing 3).
                        let x = tx.read(&table[slot])?;
                        tx.write(&table[slot], x + 1)?;
                        // sprintf inside the transaction, fprintf deferred.
                        logger.log(tx, format!("thread {t} bumped slot {slot} to {}", x + 1))
                    });
                }
            });
        }
    });

    let lines = sink.lines();
    println!("logged {} lines, e.g.:", lines.len());
    for l in lines.iter().take(5) {
        println!("  {l}");
    }
    assert_eq!(lines.len(), 100);

    // The logger's stats runtime never serialized: check the global runtime
    // saw no irrevocable commits from us (logging is the whole point).
    let stats = Runtime::global().stats();
    println!("runtime stats: {stats}");
    println!("logging example OK");
}
