//! A two-stage pipeline built from the extension toolkit: transaction-
//! friendly condition variables (`TxCondvar`, after Wang et al.'s
//! transaction-friendly condition variables — the dedup study this paper
//! builds on) and the `orElse` combinator.
//!
//! Producers fill a bounded transactional queue; a consumer drains it with
//! `or_else` preferring the high-priority queue; completion handshakes go
//! through condition variables.
//!
//! ```text
//! cargo run --release --example condvar_pipeline
//! ```

use std::collections::VecDeque;

use ad_defer::TxCondvar;
use ad_stm::{atomically, TVar};

const CAP: usize = 8;
const ITEMS_PER_PRODUCER: u32 = 200;

fn main() {
    let high: TVar<VecDeque<u32>> = TVar::new(VecDeque::new());
    let low: TVar<VecDeque<u32>> = TVar::new(VecDeque::new());
    let produced_done = TVar::new(0u32); // producers finished
    let space = TxCondvar::new();
    let avail = TxCondvar::new();

    std::thread::scope(|s| {
        // Two producers: one high-priority, one low-priority.
        for (queue, tag) in [(high.clone(), 1_000u32), (low.clone(), 2_000u32)] {
            let (space, avail, done) = (space.clone(), avail.clone(), produced_done.clone());
            s.spawn(move || {
                for i in 0..ITEMS_PER_PRODUCER {
                    atomically(|tx| {
                        let mut q = tx.read(&queue)?;
                        if q.len() >= CAP {
                            return space.wait(tx);
                        }
                        q.push_back(tag + i);
                        tx.write(&queue, q)?;
                        avail.notify_all(tx)
                    });
                }
                atomically(|tx| {
                    tx.modify(&done, |d| d + 1)?;
                    avail.notify_all(tx)
                });
            });
        }

        // One consumer: prefer the high queue via or_else.
        let (h, l, space2, avail2, done) = (
            high.clone(),
            low.clone(),
            space.clone(),
            avail.clone(),
            produced_done.clone(),
        );
        let consumer = s.spawn(move || {
            let mut high_seen = 0u32;
            let mut low_seen = 0u32;
            loop {
                enum Got {
                    Item(u32),
                    Finished,
                }
                let got = atomically(|tx| {
                    let (h, l, done) = (h.clone(), l.clone(), done.clone());
                    let avail3 = avail2.clone();
                    tx.or_else(
                        move |tx| {
                            let mut q = tx.read(&h)?;
                            match q.pop_front() {
                                Some(v) => {
                                    tx.write(&h, q)?;
                                    Ok(Got::Item(v))
                                }
                                None => tx.retry(),
                            }
                        },
                        move |tx| {
                            let mut q = tx.read(&l)?;
                            if let Some(v) = q.pop_front() {
                                tx.write(&l, q)?;
                                return Ok(Got::Item(v));
                            }
                            if tx.read(&done)? == 2 {
                                return Ok(Got::Finished);
                            }
                            avail3.wait(tx)
                        },
                    )
                });
                match got {
                    Got::Item(v) => {
                        if v >= 2_000 {
                            low_seen += 1;
                        } else {
                            high_seen += 1;
                        }
                        atomically(|tx| space2.notify_all(tx));
                    }
                    Got::Finished => break,
                }
            }
            (high_seen, low_seen)
        });

        let (h_n, l_n) = consumer.join().unwrap();
        println!("consumed: {h_n} high-priority, {l_n} low-priority");
        assert_eq!(h_n, ITEMS_PER_PRODUCER);
        assert_eq!(l_n, ITEMS_PER_PRODUCER);
    });

    println!("condvar_pipeline example OK");
}
