//! Quickstart: transactions, transaction-friendly locks, and atomic
//! deferral in one tour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ad_defer::{atomic_defer, Defer, TxLock};
use ad_stm::{atomically, Runtime, TVar};

/// A deferrable "device": shared counters as TVars, plus a pretend-slow
/// port that only deferred operations touch.
struct Device {
    queued: TVar<u64>,
    sent: TVar<u64>,
}

fn main() {
    // --- 1. Plain transactions over TVars. -------------------------------
    let checking = TVar::new(100i64);
    let savings = TVar::new(0i64);
    atomically(|tx| {
        let a = tx.read(&checking)?;
        let b = tx.read(&savings)?;
        tx.write(&checking, a - 30)?;
        tx.write(&savings, b + 30)
    });
    println!(
        "transfer: checking={} savings={}",
        checking.load(),
        savings.load()
    );

    // --- 2. Condition synchronization with retry. ------------------------
    let ready = TVar::new(false);
    let r2 = ready.clone();
    let waiter = std::thread::spawn(move || {
        atomically(|tx| {
            if !tx.read(&r2)? {
                return tx.retry(); // blocks until `ready` changes
            }
            Ok(())
        });
        println!("waiter: condition observed");
    });
    atomically(|tx| tx.write(&ready, true));
    waiter.join().unwrap();

    // --- 3. Transaction-friendly locks: mix locks and transactions. ------
    let lock = TxLock::new();
    lock.with_lock(Runtime::global(), || {
        println!("lock-based critical section, visible to transactions");
    });

    // --- 4. Atomic deferral: move slow work out of the transaction. ------
    let dev = Arc::new(Defer::new(Device {
        queued: TVar::new(0),
        sent: TVar::new(0),
    }));

    let mut handles = Vec::new();
    for _t in 0..4 {
        let dev = Arc::clone(&dev);
        handles.push(std::thread::spawn(move || {
            for _i in 0..5 {
                let dev2 = Arc::clone(&dev);
                atomically(move |tx| {
                    // Transactional part: update shared state through the
                    // subscribing accessor.
                    dev2.with(tx, |d, tx| tx.modify(&d.queued, |q| q + 1))?;
                    // Deferred part: the "slow I/O" runs after commit, but
                    // no other transaction can observe our queued-update
                    // without the send done — the device stays locked until
                    // the deferred op finishes.
                    let dev3 = Arc::clone(&dev2);
                    atomic_defer(tx, &[&*dev2], move || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        dev3.locked().sent.update_locked(|s| s + 1);
                    })
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Observers running transactions always saw queued-updates and their
    // deferred sends as one atomic step.
    let (q, s) = atomically(|tx| {
        dev.with(tx, |d, tx| {
            let q = tx.read(&d.queued)?;
            let s = tx.read(&d.sent)?;
            Ok((q, s))
        })
    });
    println!("device: queued={q} sent={s} (always equal under subscription)");
    assert_eq!(q, 20);
    assert_eq!(s, 20);
    println!("quickstart OK");
}
