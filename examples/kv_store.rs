//! The KV store end to end: durable writes via atomic deferral, a
//! simulated crash, and recovery.
//!
//! Every `put`/`write_batch` commits its transaction, then a *deferred*
//! operation appends the redo record to the WAL and waits for the fsync —
//! the call returns only once the write is durable, and the touched
//! shards stay locked until then, so no reader ever observes acked-but-
//! volatile state. Re-opening the store replays the log.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use ad_kv::{KvConfig, KvStore, SyncPolicy, WriteBatch};

fn main() {
    let path = std::env::temp_dir().join(format!("ad_example_kv_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = KvConfig::durable(&path, SyncPolicy::GroupCommit);

    // Write from several threads: concurrent commits coalesce their
    // fsyncs (group commit), so durability scales with committers.
    let store = std::sync::Arc::new(KvStore::open(config.clone()).expect("open store"));
    std::thread::scope(|s| {
        for t in 0..4 {
            let store = std::sync::Arc::clone(&store);
            s.spawn(move || {
                for i in 0..25 {
                    store.put(
                        &format!("user{t}:{i:02}"),
                        format!("value-{t}-{i}").as_bytes(),
                    );
                }
            });
        }
    });
    // A multi-key batch is one redo record: all-or-nothing across shards.
    store.write_batch(
        &WriteBatch::new()
            .put("account:alice", "70")
            .put("account:bob", "30")
            .delete("user0:00"),
    );

    let live_keys = store.len();
    let wal = store.wal_stats().expect("durable store");
    println!(
        "wrote {} records in {} fsync batches (coalescing {:.2}), {live_keys} live keys",
        wal.records,
        wal.batches,
        wal.coalescing()
    );

    // "Crash": drop the store without any shutdown ceremony, then recover.
    let before = store.dump();
    drop(store);
    let recovered = KvStore::open(config).expect("recover store");
    let report = recovered.recovery_report().expect("recovery ran").clone();
    println!(
        "recovered {} records ({} ops, torn tail: {})",
        report.records,
        report.ops,
        report.torn()
    );
    assert_eq!(
        recovered.dump(),
        before,
        "recovery must reproduce the store"
    );
    assert_eq!(
        recovered.get("account:alice").as_deref(),
        Some("70".as_bytes())
    );
    println!("recovered state matches — ack implies durable held");

    let _ = std::fs::remove_file(&path);
}
