//! The paper's headline workload in miniature: the dedup pipeline on a
//! synthetic corpus, comparing the pthread-lock backend against the
//! transactional backends with and without atomic deferral, and verifying
//! every archive reconstructs the input byte-for-byte.
//!
//! ```text
//! cargo run --release --example dedup_demo
//! ```

use std::sync::Arc;

use ad_dedup::backend::tm::{TmBackend, TmFlavor};
use ad_dedup::backend::{Backend, BackendConfig, SinkTarget};
use ad_dedup::corpus::{generate, CorpusParams};
use ad_dedup::pipeline::{run_pipeline_verified, PipelineConfig};
use ad_dedup::LockBackend;
use ad_stm::{Runtime, TmConfig};

fn main() {
    let corpus = Arc::new(generate(&CorpusParams::new(1 << 20).with_dup_ratio(0.6)));
    println!("corpus: {} bytes, dup_ratio 0.6", corpus.len());
    let threads = 2;

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(LockBackend::new(BackendConfig::default(), SinkTarget::Memory).unwrap()),
        Box::new(
            TmBackend::new(
                Runtime::new(TmConfig::stm()),
                TmFlavor::Baseline,
                BackendConfig::default(),
                SinkTarget::Memory,
            )
            .unwrap(),
        ),
        Box::new(
            TmBackend::new(
                Runtime::new(TmConfig::stm()),
                TmFlavor::DeferAll,
                BackendConfig::default(),
                SinkTarget::Memory,
            )
            .unwrap(),
        ),
        Box::new(
            TmBackend::new(
                Runtime::new(TmConfig::htm()),
                TmFlavor::DeferAll,
                BackendConfig::default(),
                SinkTarget::Memory,
            )
            .unwrap(),
        ),
    ];

    println!("\n| backend | time | chunks | unique | ratio | notes |\n|---|---|---|---|---|---|");
    for backend in &backends {
        let report =
            run_pipeline_verified(&corpus, &PipelineConfig::tiny(threads), backend.as_ref());
        println!(
            "| {} | {:.3}s | {} | {} | {:.2}x | {} |",
            report.label,
            report.elapsed.as_secs_f64(),
            report.total_chunks,
            report.unique_chunks,
            report.ratio(),
            report.diagnostics
        );
    }
    println!("\nall archives verified (byte-for-byte reconstruction)");
    println!("dedup_demo example OK");
}
