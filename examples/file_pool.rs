//! Paper §5.3 (Listing 5): a MySQL-InnoDB-style bounded file-descriptor
//! pool with deferred open/close.
//!
//! Eight logical files, at most two open at once. Worker threads append
//! records concurrently: the metadata claim (offset reservation) is a
//! subscribing transaction, the data write happens outside any critical
//! section (InnoDB's async I/O pattern), and the open/close system calls —
//! which would force irrevocability in plain TM — are atomically deferred
//! operations on the pool.
//!
//! ```text
//! cargo run --release --example file_pool
//! ```

use ad_defer::io::FdPool;
use ad_stm::Runtime;

fn main() {
    let dir = std::env::temp_dir();
    let paths: Vec<_> = (0..8)
        .map(|i| dir.join(format!("ad_example_pool_{}_{i}.dat", std::process::id())))
        .collect();
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }

    let pool = FdPool::new(paths.clone(), 2);
    let rt = Runtime::global();

    std::thread::scope(|s| {
        for t in 0..4u8 {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..40u8 {
                    let idx = ((t as usize) * 3 + (i as usize)) % 8;
                    let record = format!("t{t}r{i:02};");
                    let off = pool.append(rt, idx, record.as_bytes()).expect("append");
                    let _ = off;
                    assert!(
                        pool.open_count() <= pool.max_open(),
                        "descriptor cap violated"
                    );
                }
            });
        }
    });

    let mut total = 0;
    for i in 0..8 {
        let content = pool.read_file(i).unwrap();
        assert_eq!(content.len() as u64, pool.size_of(i), "size metadata drift");
        total += content.len();
        println!(
            "file {i}: {} bytes ({} records)",
            content.len(),
            content.len() / 6
        );
    }
    // 4 threads × 40 records × 6 bytes per "tXrYY;" record.
    assert_eq!(total, 4 * 40 * 6);
    println!(
        "pool: {} files, open_count={} (cap {}), all 160 records intact",
        pool.len(),
        pool.open_count(),
        pool.max_open()
    );

    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    println!("file_pool example OK");
}
