#!/bin/sh
# Regenerate every figure of the paper. Outputs land in results/.
set -x
cd "$(dirname "$0")/.."
cargo build --release -p ad-bench
B=./target/release
$B/fig2 --files 1 --ops 100000 --max-threads 8 > results/fig2a.txt 2>results/fig2a.log
$B/fig2 --files 2 --ops 100000 --max-threads 8 > results/fig2b.txt 2>results/fig2b.log
$B/fig2 --files 4 --ops 100000 --max-threads 8 > results/fig2c.txt 2>results/fig2c.log
$B/fig2 --files 4 --ops 100000 --max-threads 8 --keep-open > results/fig2d.txt 2>results/fig2d.log
$B/fig3a --size 33554432 --max-threads 8 > results/fig3a.txt 2>results/fig3a.log
$B/fig3b --size 33554432 --max-threads 16 > results/fig3b.txt 2>results/fig3b.log
$B/motivation --ms 50 --rounds 10 > results/motivation.txt 2>&1
$B/usecases --ops 10000 --max-threads 4 > results/usecases.txt 2>results/usecases.log
$B/fig2 --files 2 --ops 30000 --max-threads 4 --htm > results/fig2b_htm.txt 2>results/fig2b_htm.log
echo ALL-FIGURES-DONE
